"""Ablation — discrete-event simulator vs fluid model.

DESIGN.md's scale policy rests on the fluid model being a faithful
aggregate of the DES; this bench runs both on the same reduced campaign
with a matched supply and compares completion, redundancy and the
three-phase VFTP shape.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import constants as C
from repro.analysis.report import render_table
from repro.boinc.simulator import scaled_phase1
from repro.fluid import FluidCampaign


def test_des_vs_fluid(record_artifact, benchmark):
    sim = scaled_phase1(scale=100, n_proteins=20)

    des = benchmark.pedantic(sim.run, rounds=1, iterations=1)

    fluid = FluidCampaign(
        sim.campaign,
        sim.plan.duration_stats()["mean"],
        share_schedule=sim.share_schedule,
        population=sim.population,
        supply_scale=sim.campaign.total_work / C.TOTAL_REFERENCE_CPU_S,
    )
    fres = fluid.run()

    des_m = des.metrics()
    rows = [
        ["completion (weeks)", f"{des.completion_weeks:.1f}",
         f"{fres.completion_week:.1f}"],
        ["redundancy factor", f"{des_m.redundancy:.3f}",
         f"{fres.overall_redundancy:.3f}"],
        ["useful fraction", f"{des_m.useful_result_fraction:.3f}",
         f"{fres.useful_fraction:.3f}"],
        ["consumed cpu (core-weeks)",
         f"{des_m.consumed_cpu_s / 604800:.1f}",
         f"{fres.consumed_cpu_s.sum() / 604800:.1f}"],
    ]
    record_artifact(
        "ablation_des_vs_fluid",
        render_table(["observable", "DES (scaled)", "fluid (matched)"], rows),
    )

    # The fluid model is an idealization: no deadline tails, no discrete
    # hosts — agreement within ~20% on completion, tighter on ratios.
    assert des.completion_weeks == pytest.approx(fres.completion_week, rel=0.25)
    assert des_m.redundancy == pytest.approx(fres.overall_redundancy, abs=0.20)
    assert des_m.useful_result_fraction == pytest.approx(
        fres.useful_fraction, abs=0.10
    )

    # Weekly VFTP shape correlation over the common horizon.
    des_weekly = des.telemetry.weekly_vftp()
    n = min(len(des_weekly), len(fres.vftp), int(des.completion_weeks))
    corr = float(np.corrcoef(des_weekly[:n], fres.vftp[:n] * (
        des_weekly[:n].mean() / max(fres.vftp[:n].mean(), 1e-12)))[0, 1])
    assert corr > 0.85
