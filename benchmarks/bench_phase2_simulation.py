"""Section 7, executed — phase II simulated end to end.

Table 3 is arithmetic; this bench *builds* phase II (a 4,000-protein
library with the docking points cut 100x, its own calibrated cost matrix)
and integrates it with the fluid model under the section's two supply
scenarios:

* 59,730 constant VFTP -> should complete in ~40 weeks;
* the phase-I average supply (26,341 VFTP) -> ~90 weeks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import constants as C
from repro.analysis.report import paper_vs_measured
from repro.core.campaign import CampaignPlan
from repro.core.packaging import PackagingPolicy, WorkUnitPlan
from repro.fluid import FluidCampaign
from repro.maxdo.cost_model import CostModel
from repro.proteins.library import ProteinLibrary


@pytest.fixture(scope="module")
def phase2():
    """The phase-II workload: 4,000 proteins, points reduced 100x."""
    library = ProteinLibrary.synthetic(
        n_proteins=C.PHASE2_N_PROTEINS,
        sum_nsep=round(
            C.SUM_NSEP * C.PHASE2_N_PROTEINS / C.N_PROTEINS / C.PHASE2_POINT_REDUCTION
        ),
    )
    cost_model = CostModel.calibrated(library)
    return library, cost_model


def _run_at_constant_vftp(campaign, mean_wu_s, vftp):
    # Section 7 assumes phase II "behaves like the first step": the same
    # overall conversion of consumed CPU to useful work (net speed-down
    # 3.96 x redundancy 1.37 = the 5.43 raw factor).
    fluid = FluidCampaign(
        campaign,
        mean_wu_s,
        supply=lambda week: np.full_like(np.asarray(week, dtype=float), vftp),
        redundancy_quorum=C.REDUNDANCY_FACTOR,
        redundancy_bounds=C.REDUNDANCY_FACTOR,
    )
    return fluid.run(max_weeks=160)


def test_phase2_workload_ratio(phase2, record_artifact, benchmark):
    library, cost_model = phase2
    total = benchmark(cost_model.total_reference_cpu)
    ratio = total / C.TOTAL_REFERENCE_CPU_S
    record_artifact(
        "phase2_workload",
        paper_vs_measured([
            ("proteins", C.PHASE2_N_PROTEINS, len(library)),
            ("workload ratio vs phase I", C.PHASE2_WORK_RATIO, ratio),
            ("total reference CPU (years)", 1488 * C.PHASE2_WORK_RATIO,
             total / (365 * 86400)),
        ]),
    )
    assert ratio == pytest.approx(C.PHASE2_WORK_RATIO, rel=0.01)


def test_phase2_fluid_scenarios(phase2, record_artifact, benchmark):
    library, cost_model = phase2
    campaign = CampaignPlan(library, cost_model)
    mean_wu = WorkUnitPlan(
        cost_model, PackagingPolicy(target_hours=3.65)
    ).duration_stats()["mean"]

    def run_scenarios():
        fast = _run_at_constant_vftp(campaign, mean_wu, C.PHASE2_VFTP)
        slow = _run_at_constant_vftp(campaign, mean_wu, C.PHASE1_VFTP)
        return fast, slow

    fast, slow = benchmark.pedantic(run_scenarios, rounds=1, iterations=1)

    record_artifact(
        "phase2_simulation",
        paper_vs_measured([
            ("weeks at 59,730 VFTP", C.PHASE2_WEEKS, fast.completion_week),
            ("weeks at phase-I supply", C.PHASE2_WEEKS_AT_PHASE1_RATE,
             slow.completion_week),
            ("useful results (M)", "-", fast.results_useful.sum() / 1e6),
        ]),
    )

    # Table 3's durations, now *measured* from the simulated campaign.
    assert fast.completion_week == pytest.approx(C.PHASE2_WEEKS, rel=0.06)
    assert slow.completion_week == pytest.approx(
        C.PHASE2_WEEKS_AT_PHASE1_RATE, rel=0.06
    )
    # Progression shape carries over: most proteins done well before most
    # of the work.
    snap = campaign.snapshot(0.47 * campaign.total_work)
    assert snap.protein_fraction_complete > 0.75
