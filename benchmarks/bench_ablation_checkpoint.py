"""Ablation — checkpoint-restart between starting positions (Section 4.3).

"Checkpoints are essential to preserve computation" — this bench measures
how much volunteer time the checkpoint feature saves by sweeping the
kill probability at availability interruptions, and what finer/coarser
checkpoint granularity (positions per workunit) would change.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.boinc.agent as agent_mod
from repro.analysis.report import render_table
from repro.boinc.simulator import scaled_phase1


def test_checkpoint_kill_sweep(record_artifact, benchmark):
    """Device time per unit of reference work isolates checkpoint losses
    (the campaign-level speed-down also folds in redundancy-mix shifts)."""

    def sweep():
        out = {}
        for p in (0.0, 0.3, 1.0):
            original = agent_mod.KILL_PROBABILITY
            agent_mod.KILL_PROBABILITY = p
            try:
                sim = scaled_phase1(scale=300, n_proteins=10)
                result = sim.run()
            finally:
                agent_mod.KILL_PROBABILITY = original
            runs = np.asarray(result.telemetry.run_active_s)
            refs = np.asarray(result.telemetry.run_reference_s)
            out[p] = (float(runs.sum() / refs.sum()), result.completion_weeks)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        [f"{p:.1f}", f"{ratio:.3f}", f"{wk:.1f}" if wk else "-"]
        for p, (ratio, wk) in results.items()
    ]
    record_artifact(
        "ablation_checkpoint_kill",
        "kill probability at interruptions vs device-time per unit of\n"
        "reference work ('interruptions consumed a large part of the\n"
        "additional computing time', Section 6):\n"
        + render_table(
            ["P(kill)", "device-s per reference-s", "completion (weeks)"], rows
        ),
    )

    # Losing progress at every interruption must cost measurably more
    # device time per unit of useful work than never losing any.  (The
    # intermediate point is stochastic — changing kill outcomes perturbs
    # the whole campaign trajectory — so only the endpoints are ordered.)
    assert results[1.0][0] > results[0.0][0] * 1.03
    assert results[0.3][0] > results[0.0][0] * 0.95


def test_checkpoint_granularity(record_artifact, benchmark):
    """Coarser checkpoints (fewer positions per workunit slice) lose more
    work per kill: sweep the packaging target, which sets the chunk size
    relative to the interruption rate."""
    from repro.core.packaging import PackagingPolicy

    def sweep():
        out = {}
        for h in (1.0, 3.65, 10.0):
            sim = scaled_phase1(scale=300, n_proteins=10, target_hours=h)
            result = sim.run()
            runs = np.asarray(result.telemetry.run_active_s)
            refs = np.asarray(result.telemetry.run_reference_s)
            out[h] = float(runs.sum() / refs.sum())
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[f"{h:g}", f"{ratio:.3f}"] for h, ratio in results.items()]
    record_artifact(
        "ablation_checkpoint_granularity",
        "packaging target (h) vs device-time per unit of reference work\n"
        "(bigger workunits suffer more interruptions each, but the\n"
        "per-position checkpoint bounds the loss):\n"
        + render_table(["target h", "device-s per reference-s"], rows),
    )
    for ratio in results.values():
        # All within the plausible volunteer range around the paper's 3.96.
        assert 3.0 < ratio < 5.5
