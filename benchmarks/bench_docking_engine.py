"""Docking engine benchmark — batched vs reference execution.

Not a paper figure: this bench guards the performance contract of the
batched docking engine (pose-vectorized kernels + lockstep minimizer +
fused C kernels).  On a >=64-bead couple at ``nsep=4`` in a single
process the batched engine must be at least 5x faster than the scalar
reference path while producing final energies within 1e-6 (the engines
are in fact bit-identical, which the equivalence suite in
``tests/test_maxdo_batched.py`` asserts exactly).

Records a text artifact plus machine-readable JSON both under
``benchmarks/artifacts/`` and as ``BENCH_docking.json`` at the repo root.
"""

from __future__ import annotations

import time

import numpy as np

from repro.maxdo import energy as energy_mod
from repro.maxdo.docking import dock_couple
from repro.maxdo.orientations import N_COUPLES, N_GAMMA
from repro.proteins.model import synthesize_protein
from repro.rng import stream

N_BEADS = 64
NSEP = 4
MAX_ITERATIONS = 60
MIN_SPEEDUP = 5.0


def test_bench_docking_engine(record_artifact, record_bench_json, benchmark):
    receptor = synthesize_protein("BR", N_BEADS, stream(11, "bench-receptor"))
    ligand = synthesize_protein("BL", N_BEADS, stream(11, "bench-ligand"))
    kw = dict(nsep=NSEP, max_iterations=MAX_ITERATIONS)

    # Warm the one-time costs (fused kernel compile, pair-table build) so
    # both engines are timed steady-state.
    dock_couple(receptor, ligand, nsep=1, minimize=False)

    t0 = time.perf_counter()
    reference = dock_couple(receptor, ligand, engine="reference", **kw)
    t_reference = time.perf_counter() - t0

    batched = benchmark.pedantic(
        lambda: dock_couple(receptor, ligand, engine="batched", **kw),
        rounds=1,
        iterations=1,
    )
    t_batched = benchmark.stats.stats.mean

    n_poses = NSEP * N_COUPLES * N_GAMMA
    speedup = t_reference / t_batched
    max_energy_diff = float(np.abs(batched.e_total - reference.e_total).max())
    pairs_per_pose = N_BEADS * N_BEADS
    poses_per_chunk = max(
        1, energy_mod._BATCH_PAIR_BUDGET // pairs_per_pose
    )

    lines = [
        f"couple: {N_BEADS} x {N_BEADS} beads, nsep={NSEP}, "
        f"{N_COUPLES} couples x {N_GAMMA} gamma, "
        f"max_iterations={MAX_ITERATIONS}",
        f"reference engine: {t_reference:8.3f} s "
        f"({t_reference / n_poses * 1e9:12.0f} ns/pose)",
        f"batched engine:   {t_batched:8.3f} s "
        f"({t_batched / n_poses * 1e9:12.0f} ns/pose)",
        f"speedup: {speedup:.2f}x (floor {MIN_SPEEDUP:.1f}x)",
        f"max |E_total| difference: {max_energy_diff:.3e} (tolerance 1e-6)",
        f"kernel batch: {poses_per_chunk} poses/chunk "
        f"({pairs_per_pose} pairs/pose, "
        f"budget {energy_mod._BATCH_PAIR_BUDGET} pairs)",
        f"fused C kernels: "
        f"{'active' if energy_mod._fused_ready(N_BEADS) else 'numpy fallback'}",
    ]
    record_artifact("bench_docking_engine", "\n".join(lines))
    record_bench_json(
        "docking",
        {
            "n_beads": N_BEADS,
            "nsep": NSEP,
            "n_poses": n_poses,
            "max_iterations": MAX_ITERATIONS,
            "reference_seconds": t_reference,
            "batched_seconds": t_batched,
            "reference_ns_per_pose": t_reference / n_poses * 1e9,
            "batched_ns_per_pose": t_batched / n_poses * 1e9,
            "speedup": speedup,
            "max_energy_diff": max_energy_diff,
            "poses_per_chunk": poses_per_chunk,
            "pairs_per_pose": pairs_per_pose,
            "batch_pair_budget": energy_mod._BATCH_PAIR_BUDGET,
            "fused_kernels": bool(energy_mod._fused_ready(N_BEADS)),
        },
        experiment="docking engine speedup",
    )

    assert max_energy_diff <= 1e-6
    assert (batched.positions == reference.positions).all()
    assert (batched.eulers == reference.eulers).all()
    assert speedup >= MIN_SPEEDUP, (
        f"batched engine only {speedup:.2f}x faster than reference "
        f"(floor {MIN_SPEEDUP}x)"
    )
