"""Ablation — fleet composition.

Section 6 attributes the speed-down to device behaviour (throttle, owner
contention, interruptions, slower CPUs).  This bench runs the same
campaign on different fleet compositions to show how the paper's
aggregate numbers move with the device mix — the what-if behind "these
new faster devices can work on more time consuming workunits".
"""

from __future__ import annotations

import pytest

from repro.analysis.report import render_table
from repro.boinc.simulator import scaled_phase1
from repro.grid.profiles import (
    ALWAYS_ON,
    HOME_EVENING,
    LAPTOP,
    OFFICE_DESKTOP,
    DeviceClass,
    MixtureHostModel,
    wcg_fleet_mixture,
)

FLEETS = {
    "WCG-like mixture": wcg_fleet_mixture(),
    "all home desktops": [DeviceClass("home", HOME_EVENING.profile, 1.0)],
    "all office desktops": [DeviceClass("office", OFFICE_DESKTOP.profile, 1.0)],
    "all laptops": [DeviceClass("laptop", LAPTOP.profile, 1.0)],
    "all always-on": [DeviceClass("always-on", ALWAYS_ON.profile, 1.0)],
}


def test_fleet_mixture(record_artifact, benchmark):
    def run_all():
        out = {}
        for label, classes in FLEETS.items():
            sim = scaled_phase1(scale=250, n_proteins=12)
            sim.host_model = MixtureHostModel(
                classes=classes, seed=sim.seed, horizon=sim.horizon_s
            )
            out[label] = sim.run()
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for label, res in results.items():
        m = res.metrics()
        rows.append([
            label,
            f"{res.completion_weeks:.1f}" if res.completion_weeks else ">40",
            f"{m.speed_down_net:.2f}",
            f"{res.mean_device_run_hours():.1f}",
        ])
    record_artifact(
        "ablation_fleet_mixture",
        "same campaign, same host count, different device mixes:\n"
        + render_table(
            ["fleet", "completion (weeks)", "net speed-down",
             "mean device run (h)"],
            rows,
        ),
    )

    def weeks(label):
        w = results[label].completion_weeks
        return w if w is not None else float("inf")

    # Always-on workstations beat every volunteer mix; laptops trail.
    assert weeks("all always-on") < weeks("WCG-like mixture")
    assert weeks("all always-on") < weeks("all laptops")
    # The WCG-like mixture lands between its extreme constituents.
    assert weeks("all office desktops") <= weeks("all laptops")
