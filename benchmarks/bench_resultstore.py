"""Performance benchmark — columnar store pipeline vs the text baseline.

Section 5.2's post-processing (check every uploaded chunk, merge chunks
into one file per couple, reduce to the cross-docking matrix) ran over
"123 Gb of text files"; :mod:`repro.store` replaces the text files with
packed fixed-point columns the whole pipeline reads as numpy arrays.

This bench builds one synthetic chunked upload set — including a
corrupted chunk (NaN energies) and a short chunk (bad line count), since
check verdicts must survive the format change — then runs the *same*
check -> merge -> matrix pipeline twice:

* **text baseline**: ``check_result_file`` per chunk,
  ``merge_couple_results`` per couple, matrix from re-parsed merged
  files (this path already uses the vectorized parser/renderer, so the
  comparison is against the best text pipeline in the repo, not a straw
  man);
* **columnar**: ``check_store`` / ``merge_couple_store`` /
  ``energy_matrix`` over the store file.

Asserted invariants: identical check verdicts (same flagged chunks, same
rules), bit-identical merged energies (compared in packed fixed-point,
so NaN sentinels count too), identical matrices, and an end-to-end
speedup of at least :data:`MIN_SPEEDUP`.  Records the measured stage
timings plus the storage projection to the full 168x168 dataset (both
formats, against the paper's 123 GB figure) under
``benchmarks/artifacts/`` and as ``BENCH_resultstore.json`` at the repo
root.

Smoke mode: ``REPRO_BENCH_SMOKE=1`` shrinks the dataset ~30x and halves
the speedup floor — still a guard against a >50% regression of the
headline claim.
"""

from __future__ import annotations

import os
from time import perf_counter

import numpy as np
import pytest

from repro.maxdo.resultfile import (
    RESULT_DTYPE,
    ResultHeader,
    read_results,
    write_results,
)
from repro.proteins.library import ProteinLibrary
from repro.rng import stream
from repro.store import (
    check_segment,
    check_store,
    energy_matrix,
    merge_couple_store,
    pack_records,
    read_store,
    render_lines,
    text_to_store,
)
from repro.validation.checks import check_result_file
from repro.validation.merge import dataset_volume, merge_couple_results

pytestmark = pytest.mark.store

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: dataset shape; full ~115k rows, smoke ~10k (big enough that the
#: per-segment framing cost does not mask the column-pass speedup)
N_DS_COUPLES = 8 if SMOKE else 16
N_CHUNKS = 3 if SMOKE else 4
NSEP_PER_CHUNK = 12 if SMOKE else 30
N_ROT = 36 if SMOKE else 60
N_GAMMA = 8

#: end-to-end pipeline speedup floor.  The full bench demands the 10x the
#: store exists for; smoke mode halves it (a >50% regression guard on the
#: headline claim, same convention as bench_des_kernel).
MIN_SPEEDUP = 5.0 if SMOKE else 10.0

TIMING_REPEATS = 1 if SMOKE else 2


def _synth_chunk(rng, receptor, ligand, isep_start):
    n = NSEP_PER_CHUNK * N_ROT
    rec = np.zeros(n, dtype=RESULT_DTYPE)
    rec["isep"] = np.repeat(
        np.arange(isep_start, isep_start + NSEP_PER_CHUNK), N_ROT
    )
    rec["irot"] = np.tile(np.arange(1, N_ROT + 1), NSEP_PER_CHUNK)
    rec["igamma"] = rng.integers(1, N_GAMMA + 1, size=n)
    for f in ("x", "y", "z"):
        rec[f] = np.round(rng.normal(0.0, 40.0, n), 3)
    for f in ("alpha", "beta", "gamma"):
        rec[f] = np.round(rng.uniform(0.0, 6.2831, n), 4)
    rec["e_lj"] = np.round(rng.normal(-30.0, 12.0, n), 4)
    rec["e_elec"] = np.round(rng.normal(-8.0, 4.0, n), 4)
    rec["e_tot"] = np.round(rec["e_lj"] + rec["e_elec"], 4)
    header = ResultHeader(
        receptor=receptor, ligand=ligand, isep_start=isep_start,
        nsep=NSEP_PER_CHUNK, n_couples=N_ROT, n_gamma=N_GAMMA,
    )
    return header, rec


def _build_dataset(root):
    """A chunked upload directory: N_DS_COUPLES couples x N_CHUNKS chunks,
    with one NaN-corrupted chunk and one short (bad-line-count) chunk."""
    rng = stream(11, "bench-resultstore")
    text_dir = root / "chunks"
    text_dir.mkdir(parents=True)
    names = [f"p{i:03d}" for i in range(N_DS_COUPLES + 1)]
    couples = [(names[i], names[i + 1]) for i in range(N_DS_COUPLES)]
    by_couple: dict[tuple[str, str], list] = {}
    for c_idx, (receptor, ligand) in enumerate(couples):
        for k in range(N_CHUNKS):
            header, rec = _synth_chunk(
                rng, receptor, ligand, 1 + k * NSEP_PER_CHUNK
            )
            lines = render_lines(rec)
            if c_idx == 0 and k == 0:
                # A corrupted upload: NaN energies on a few rows.
                rec["e_lj"][:3] = np.nan
                rec["e_tot"][:3] = np.nan
                lines = render_lines(rec)
            if c_idx == 1 and k == 0:
                # A short upload: one line missing vs the header's claim.
                lines = lines[:-1]
            path = text_dir / f"{receptor}_{ligand}_{header.isep_start}.result"
            write_results(path, header, lines)
            by_couple.setdefault((receptor, ligand), []).append(path)
    return text_dir, couples, by_couple


def _verdict_key(report):
    """The comparable content of a check outcome."""
    return (
        report.ok,
        tuple(sorted(report.files_with_bad_line_count)),
        tuple(sorted(
            (name, tuple(problems))
            for name, problems in report.files_with_bad_values.items()
        )),
    )


def _text_pipeline(by_couple, names, merged_dir):
    """check -> merge -> matrix over the text files; returns
    (per-file verdicts, merged packed e_tot per couple, matrix, timings)."""
    merged_dir.mkdir(exist_ok=True)
    t0 = perf_counter()
    verdicts = {}
    for paths in by_couple.values():
        for p in paths:
            verdicts[p.name] = _verdict_key(check_result_file(p))
    t_check = perf_counter() - t0

    t0 = perf_counter()
    merged_paths = {}
    for (receptor, ligand), paths in by_couple.items():
        out = merged_dir / f"{receptor}_{ligand}.result"
        merge_couple_results(paths, out)
        merged_paths[(receptor, ligand)] = out
    t_merge = perf_counter() - t0

    t0 = perf_counter()
    index = {n: i for i, n in enumerate(names)}
    matrix = np.full((len(names), len(names)), np.inf)
    merged_energies = {}
    for (receptor, ligand), path in merged_paths.items():
        table = read_results(path)
        e_tot = table.records["e_tot"]
        matrix[index[receptor], index[ligand]] = e_tot.min()
        merged_energies[(receptor, ligand)] = pack_records(table.records)["e_tot"]
    t_matrix = perf_counter() - t0
    return verdicts, merged_energies, matrix, (t_check, t_merge, t_matrix)


def _columnar_pipeline(store_path, names, merged_store_path):
    """The same pipeline over the columnar store."""
    t0 = perf_counter()
    store = read_store(store_path)
    report = check_store(store)
    # Per-file verdicts for the parity assertion (the aggregate report is
    # what a server would act on; both come from the same column passes).
    verdicts = {}
    for segment in store.segments:
        verdicts[segment.source] = _verdict_key(
            check_segment(segment, name=segment.source)
        )
    t_check = perf_counter() - t0

    t0 = perf_counter()
    merge_couple_store(store, merged_store_path)
    t_merge = perf_counter() - t0

    t0 = perf_counter()
    merged = read_store(merged_store_path)
    matrix, _ = energy_matrix(merged, names=names)
    merged_energies = {
        (s.header.receptor, s.header.ligand): s.packed["e_tot"]
        for s in merged.segments
    }
    t_matrix = perf_counter() - t0
    return report, verdicts, merged_energies, matrix, (t_check, t_merge, t_matrix)


def test_bench_resultstore(tmp_path, record_artifact, record_bench_json):
    text_dir, couples, by_couple = _build_dataset(tmp_path)
    names = sorted({n for couple in couples for n in couple})
    n_rows = sum(
        len(read_results(p)) for paths in by_couple.values() for p in paths
    )

    store_path = tmp_path / "chunks.rcs"
    text_to_store(
        [p for paths in by_couple.values() for p in paths], store_path
    )

    best_text = None
    best_col = None
    for _ in range(TIMING_REPEATS):
        t_verdicts, t_merged, t_matrix, t_times = _text_pipeline(
            by_couple, names, tmp_path / "merged_text"
        )
        _report, c_verdicts, c_merged, c_matrix, c_times = _columnar_pipeline(
            store_path, names, tmp_path / "merged.rcs"
        )
        if best_text is None or sum(t_times) < sum(best_text):
            best_text = t_times
        if best_col is None or sum(c_times) < sum(best_col):
            best_col = c_times

    # -- parity: the speedup must not change a single answer -------------
    assert c_verdicts == t_verdicts, "check verdicts diverge across formats"
    assert not _report.ok  # the planted corruption was caught
    assert set(c_merged) == set(t_merged)
    for couple in t_merged:
        assert np.array_equal(t_merged[couple], c_merged[couple]), (
            f"merged energies differ for {couple}"
        )
    assert np.array_equal(t_matrix, c_matrix, equal_nan=True)

    text_total = sum(best_text)
    col_total = sum(best_col)
    speedup = text_total / col_total
    stage_names = ("check", "merge", "matrix")
    stages = {
        name: {
            "text_s": best_text[i],
            "columnar_s": best_col[i],
            "speedup": best_text[i] / best_col[i],
        }
        for i, name in enumerate(stage_names)
    }

    # -- storage projection to the full 168x168 dataset ------------------
    volume = dataset_volume(ProteinLibrary.phase1())

    lines = [
        f"{'stage':<10}{'text s':>10}{'columnar s':>12}{'speedup':>9}",
    ]
    for name in stage_names:
        row = stages[name]
        lines.append(
            f"{name:<10}{row['text_s']:>10.4f}{row['columnar_s']:>12.4f}"
            f"{row['speedup']:>8.1f}x"
        )
    lines.append(
        f"pipeline   {text_total:>10.4f}{col_total:>12.4f}{speedup:>8.1f}x "
        f"({n_rows:,} rows, floor {MIN_SPEEDUP:g}x, smoke={SMOKE})"
    )
    lines.append(
        f"full 168x168 dataset: text {volume.raw_gib:.1f} GiB "
        f"(paper: 123 GB), columnar {volume.columnar_gib:.1f} GiB "
        f"-> {volume.columnar_ratio:.2f}x smaller"
    )
    record_artifact("bench_resultstore", "\n".join(lines))
    record_bench_json(
        "resultstore",
        {
            "smoke": SMOKE,
            "n_rows": n_rows,
            "n_couples": len(couples),
            "n_chunks_per_couple": N_CHUNKS,
            "stages": stages,
            "pipeline_text_s": text_total,
            "pipeline_columnar_s": col_total,
            "pipeline_speedup": speedup,
            "min_speedup": MIN_SPEEDUP,
            "verdicts_identical": True,
            "merged_energies_bit_identical": True,
            "projection_full_dataset": {
                "n_files": volume.n_files,
                "total_rows": volume.total_lines,
                "text_bytes": volume.raw_bytes,
                "text_gib": volume.raw_gib,
                "paper_text_figure_gb": 123.0,
                "text_compressed_bytes": volume.compressed_bytes,
                "columnar_bytes": volume.columnar_bytes,
                "columnar_gib": volume.columnar_gib,
                "text_over_columnar": volume.columnar_ratio,
            },
        },
        experiment="columnar store pipeline vs text baseline",
    )

    assert speedup >= MIN_SPEEDUP, (
        f"columnar pipeline only {speedup:.1f}x the text baseline "
        f"(floor {MIN_SPEEDUP:g}x)"
    )
