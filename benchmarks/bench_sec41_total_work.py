"""Section 4.1 — total-work estimation and the Grid'5000 calibration run.

Paper: formula (1) gives 1,488 years 237 days 19:45:54 of reference CPU;
the 168^2 calibration campaign consumed >73 CPU-days on 640 processors
within a one-day reservation; the whole project shipped <2 MB per workunit
and produced 123 GB of results.
"""

from __future__ import annotations

import pytest

from repro import constants as C
from repro.analysis.report import paper_vs_measured
from repro.core.estimation import calibration_experiment, estimate_total_work
from repro.dedicated import DedicatedGridSimulation
from repro.units import SECONDS_PER_DAY


def test_sec41_estimate(library, cost_model, record_artifact, benchmark):
    report = benchmark(estimate_total_work, library, cost_model)

    record_artifact(
        "sec41_total_work",
        paper_vs_measured([
            ("total cpu (y:d:h:m:s)", "1,488:237:19:45:54", report.total_ydhms),
            ("max workunits", C.TOTAL_MAX_WORKUNITS, report.max_workunits),
            ("result dataset (GB)", 123, report.result_bytes / 1e9),
        ]),
    )
    assert report.total_ydhms == "1,488:237:19:45:54"
    assert report.max_workunits == C.TOTAL_MAX_WORKUNITS


def test_sec41_calibration_campaign(cost_model, record_artifact, benchmark):
    plan, recovered = benchmark.pedantic(
        calibration_experiment, args=(cost_model,), rounds=1, iterations=1
    )
    grid = DedicatedGridSimulation.grid5000_calibration_setup()
    executed = grid.run_calibration(cost_model)

    record_artifact(
        "sec41_calibration",
        paper_vs_measured([
            ("couples measured", 28_224, plan.n_couples),
            ("processors", C.CALIBRATION_PROCESSORS, plan.n_processors),
            ("cpu days consumed", C.CALIBRATION_CPU_DAYS, plan.cpu_days),
            ("fits one-day reservation", "yes",
             "yes" if executed.makespan_s <= SECONDS_PER_DAY else "no"),
            ("scheduled makespan (days)", "<1", executed.makespan_days),
        ]),
    )
    assert plan.cpu_days == pytest.approx(C.CALIBRATION_CPU_DAYS, rel=0.20)
    assert executed.makespan_s <= SECONDS_PER_DAY
    assert recovered.shape == (168, 168)
