"""Multi-campaign grid benchmark — scheduling reproduces Section 5.1.

Three phases, one JSON verdict (``BENCH_multicampaign.json``):

* **three-phase prioritization** — the canonical scenario
  (:func:`repro.multi.three_phase_scenario`): a fixed fleet (flat
  population, constant share schedule), an HCMD cross-docking campaign
  whose fair-share weight steps control (7%) → ramp → full power (45%),
  and a hungry background screening campaign holding the complement.
  Enforced: the HCMD campaign's mean daily consumed CPU in the
  full-power phase is **≥ 2×** its control-phase mean — the paper's
  phase-II throughput inflection, attributable to the scheduler alone
  because the fleet never changes.
* **fair-share convergence** — two hungry screening campaigns at
  constant weights 1:3 on one fleet.  Enforced: each campaign's
  long-run issued share lands within **10% (absolute)** of its weight
  share, and the shares exhaust the grid (work conservation).
* **single-campaign parity** — a grid registering exactly one
  cross-docking campaign must be **bit-identical** to the monolithic
  ``scaled_phase1`` engine under full tracing: equal ``ValidationStats``,
  equal completion time, equal telemetry series, and an equal event
  trace, event for event.

Smoke mode: set ``REPRO_BENCH_SMOKE=1`` to shrink the scenario fleet and
databases; every guard still runs.
"""

from __future__ import annotations

import os

import numpy as np

from repro.boinc.simulator import scaled_phase1
from repro.multi import (
    Campaign,
    GridConfig,
    MultiGridSimulation,
    constant_share,
    flat_population,
    three_phase_scenario,
)
from repro.obs import RingSink, Tracer

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: three-phase scenario size (full = the canonical defaults)
SCENARIO = (
    dict(scale=25.0, n_proteins=8, n_ligands=4_000, n_hosts_peak=12)
    if SMOKE
    else {}
)
#: phase windows in days: control ends week 9, full power spans the
#: post-ramp weeks 13..26 (constants.CONTROL_PERIOD_WEEKS / ramp 4)
CONTROL_DAYS = slice(0, 9 * 7)
FULL_POWER_DAYS = slice(13 * 7, 26 * 7)
RAMP_DAYS = slice(9 * 7, 13 * 7)
#: the acceptance bound on the phase-II inflection
MIN_INFLECTION = 2.0

#: fair-share convergence phase
FAIR_WEIGHTS = (1.0, 3.0)
FAIR_LIGANDS = 2_000 if SMOKE else 6_000
FAIR_HORIZON_WEEKS = 6.0 if SMOKE else 12.0
FAIR_TOLERANCE = 0.10

#: parity phase (the tier-1 test campaign, full tracing)
PARITY = dict(scale=900.0, n_proteins=5)
PARITY_SEED = 42


def _fair_share_grid() -> GridConfig:
    """Two screening campaigns, both hungry for the whole horizon."""
    return GridConfig(
        campaigns=(
            Campaign.screening(
                "light", n_ligands=FAIR_LIGANDS, mean_hours=1.0,
                batch_size=100, weight=FAIR_WEIGHTS[0],
            ),
            Campaign.screening(
                "heavy", n_ligands=FAIR_LIGANDS, mean_hours=1.0,
                batch_size=100, weight=FAIR_WEIGHTS[1],
            ),
        ),
        policy="fair-share",
        seed=13,
        horizon_weeks=FAIR_HORIZON_WEEKS,
        n_hosts_peak=12,
        share_schedule=constant_share(),
        population=flat_population(),
    )


def test_multicampaign_benchmark(record_bench_json, record_artifact):
    # -- phase 1: the three-phase prioritization inflection -----------------
    grid = three_phase_scenario(**SCENARIO)
    outcome = MultiGridSimulation(grid).run()
    daily = outcome["hcmd"].telemetry.daily_cpu_s
    control = float(daily[CONTROL_DAYS].mean())
    ramp = float(daily[RAMP_DAYS].mean())
    full_power = float(daily[FULL_POWER_DAYS].mean())
    inflection = full_power / control if control > 0 else float("inf")

    assert control > 0.0, "HCMD received no work during the control phase"
    assert inflection >= MIN_INFLECTION, (
        f"prioritization produced only {inflection:.2f}x the control-phase "
        f"throughput (need >= {MIN_INFLECTION}x)"
    )
    # the inflection is the scheduler's: the fleet is fixed by construction
    assert outcome["hcmd"].n_hosts == grid.n_hosts_peak

    # -- phase 2: fair share converges to the weight vector -----------------
    fair = MultiGridSimulation(_fair_share_grid()).run()
    shares = fair.issued_share()
    weight_sum = sum(FAIR_WEIGHTS)
    targets = {
        "light": FAIR_WEIGHTS[0] / weight_sum,
        "heavy": FAIR_WEIGHTS[1] / weight_sum,
    }
    for name, target in targets.items():
        assert abs(shares[name] - target) <= FAIR_TOLERANCE, (
            f"campaign {name!r} share {shares[name]:.3f} strayed more than "
            f"{FAIR_TOLERANCE} from its weight share {target:.3f}"
        )
    assert abs(sum(shares.values()) - 1.0) < 1e-9  # work conservation

    # -- phase 3: single registered campaign == monolithic engine -----------
    def run_traced(run):
        ring = RingSink(capacity=2_000_000)
        result = run(Tracer(sink=ring))
        return result, [(e.etype, e.t_sim, e.fields) for e in ring.events]

    mono, mono_trace = run_traced(
        lambda tr: scaled_phase1(seed=PARITY_SEED, tracer=tr, **PARITY).run()
    )
    single = GridConfig(
        campaigns=(Campaign.cross_docking("hcmd", **PARITY),),
        seed=PARITY_SEED,
        horizon_weeks=40.0,
    )
    multi_result, multi_trace = run_traced(
        lambda tr: MultiGridSimulation(single, tracer=tr).run()
    )
    routed = multi_result["hcmd"]

    assert routed.server.stats == mono.server.stats
    assert routed.completion_time == mono.completion_time
    np.testing.assert_array_equal(
        routed.telemetry.daily_cpu_s, mono.telemetry.daily_cpu_s
    )
    assert multi_trace == mono_trace, (
        "single-campaign grid trace diverged from the monolithic engine"
    )
    parity = True  # the asserts above are the gate

    payload = {
        "smoke": SMOKE,
        "three_phase": {
            "scenario": SCENARIO if SCENARIO else "canonical defaults",
            "n_hosts": outcome["hcmd"].n_hosts,
            "control_daily_cpu_s": control,
            "ramp_daily_cpu_s": ramp,
            "full_power_daily_cpu_s": full_power,
            "inflection": inflection,
            "min_inflection": MIN_INFLECTION,
            "target_met": inflection >= MIN_INFLECTION,
            "hcmd_completion_s": outcome["hcmd"].completion_time,
            "issued_share": outcome.issued_share(),
        },
        "fair_share": {
            "weights": dict(zip(("light", "heavy"), FAIR_WEIGHTS)),
            "target_shares": targets,
            "measured_shares": shares,
            "tolerance": FAIR_TOLERANCE,
            "horizon_weeks": FAIR_HORIZON_WEEKS,
            "target_met": all(
                abs(shares[n] - t) <= FAIR_TOLERANCE
                for n, t in targets.items()
            ),
        },
        "single_campaign_parity": {
            "bit_identical": parity,
            "trace_events": len(mono_trace),
            "validated": mono.server.stats.effective,
            "completion_time_s": mono.completion_time,
        },
    }
    record_bench_json("multicampaign", payload, experiment="multicampaign")

    record_artifact(
        "bench_multicampaign",
        "\n".join([
            "multi-campaign grid — scheduling benchmark",
            f"mode                      : {'smoke' if SMOKE else 'full'}",
            f"fleet (fixed)             : {outcome['hcmd'].n_hosts} hosts",
            f"control daily CPU (s)     : {control:,.0f}",
            f"ramp daily CPU (s)        : {ramp:,.0f}",
            f"full-power daily CPU (s)  : {full_power:,.0f}",
            f"phase-II inflection       : {inflection:.2f}x "
            f"(need >= {MIN_INFLECTION}x)",
            f"fair-share 1:3 split      : "
            f"{shares['light']:.3f} / {shares['heavy']:.3f} "
            f"(targets {targets['light']:.3f} / {targets['heavy']:.3f}, "
            f"tol {FAIR_TOLERANCE})",
            f"single-campaign parity    : "
            f"{'bit-identical' if parity else 'DIVERGED'} "
            f"({len(mono_trace):,} trace events compared)",
        ]),
    )
