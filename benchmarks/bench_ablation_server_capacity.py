"""Ablation — the server-capacity constraint on workunit duration (§3.2).

"This value [the ~10 h workunit] is also constrained by the capacity of
the servers at World Community Grid to distribute the work [...].  It
determines the rate of transactions with World Community Grid servers."
This bench quantifies that statement across workunit targets and fleet
sizes.
"""

from __future__ import annotations

import pytest

from repro import constants as C
from repro.analysis.report import render_table
from repro.boinc.capacity import ServerCapacityModel


def test_server_capacity_sweep(record_artifact, benchmark):
    model = ServerCapacityModel()

    def sweep():
        rows = []
        for target_h in (0.1, 0.5, 1.0, 3.3, 10.0):
            device_s = target_h * 3600 * C.SPEED_DOWN_NET
            rows.append((
                target_h,
                model.results_per_day(C.WCG_DEVICES, device_s),
                model.utilization(C.WCG_DEVICES, device_s),
                model.sustainable(C.WCG_DEVICES, device_s),
            ))
        return rows

    rows = benchmark(sweep)

    rendered = render_table(
        ["target h (reference)", "results/day", "server utilization", "sustainable"],
        [
            [f"{h:g}", f"{r:,.0f}", f"{u:.1%}", "yes" if s else "NO"]
            for h, r, u, s in rows
        ],
    )
    floor_h = model.min_workunit_hours(C.WCG_DEVICES, C.SPEED_DOWN_NET)
    record_artifact(
        "ablation_server_capacity",
        f"fleet: {C.WCG_DEVICES:,} devices; capacity: "
        f"{model.max_results_per_day:,.0f} results/day "
        f"(BOINC task-server study)\n\n" + rendered
        + f"\n\nminimum sustainable workunit duration: {floor_h:.2f} reference hours"
        + "\n(the 10 h choice sits comfortably above the server floor;"
        + "\n sub-hour workunits at WCG scale would not)",
    )

    # The paper's constraint direction: utilization falls with target h...
    utils = [u for _, _, u, _ in rows]
    assert utils == sorted(utils, reverse=True)
    # ...the deployed 3.3 h and nominal 10 h are sustainable...
    by_h = {h: s for h, _, _, s in rows}
    assert by_h[3.3] and by_h[10.0]
    # ...while 6-minute workunits would overload the server.
    assert not by_h[0.1]
    assert 0 < floor_h < 3.3
