"""Table 2 — equivalence between WCG VFTP and dedicated-grid processors.

Paper: whole period 16,450 VFTP <-> 3,029 processors; full-power phase
26,248 VFTP <-> 4,833 processors (ratio = the 5.43 raw speed-down).
"""

from __future__ import annotations

import pytest

from repro import constants as C
from repro.analysis.comparison import EquivalenceTable
from repro.analysis.report import paper_vs_measured, render_table


def test_table2_equivalence(fluid_result, record_artifact, benchmark):
    fluid, result = fluid_result

    def build():
        whole = result.metrics()
        full_power = result.metrics(first_week=13)
        return EquivalenceTable.from_metrics(whole, full_power), whole, full_power

    table, whole, full_power = benchmark(build)

    rows = table.rows()
    rendered = render_table(
        ["Grid", "whole period", "full power working phase"],
        [
            ["World Community Grid", rows[0][1], rows[1][1]],
            ["Dedicated Grid", rows[0][2], rows[1][2]],
        ],
    )
    comparison = paper_vs_measured([
        ("WCG VFTP (whole period)", C.HCMD_VFTP_WHOLE_PERIOD, rows[0][1]),
        ("dedicated (whole period)", C.DEDICATED_EQUIV_WHOLE_PERIOD, rows[0][2]),
        ("WCG VFTP (full power)", C.HCMD_VFTP_FULL_POWER, rows[1][1]),
        ("dedicated (full power)", C.DEDICATED_EQUIV_FULL_POWER, rows[1][2]),
        ("raw speed-down", C.SPEED_DOWN_RAW, table.whole_period.speed_down),
        ("week equivalent of 74,825 VFTP", C.WCG_WEEK_DEDICATED_EQUIV,
         EquivalenceTable.current_week_equivalent(
             C.WCG_WEEK_VFTP, whole.speed_down_net)),
    ])
    record_artifact("table2_equivalence", rendered + "\n\n" + comparison)

    # Shape: the volunteer grid needs ~5.4x more VFTP than dedicated procs.
    assert table.whole_period.speed_down == pytest.approx(C.SPEED_DOWN_RAW, rel=0.05)
    assert rows[0][1] == pytest.approx(C.HCMD_VFTP_WHOLE_PERIOD, rel=0.06)
    assert rows[1][1] == pytest.approx(C.HCMD_VFTP_FULL_POWER, rel=0.06)
    assert rows[0][2] == pytest.approx(C.DEDICATED_EQUIV_WHOLE_PERIOD, rel=0.06)
    assert rows[1][2] == pytest.approx(C.DEDICATED_EQUIV_FULL_POWER, rel=0.10)
