"""Section 2.1 — the Decrypthon pilot study.

"This project follows a first study on 6 proteins which was performed on
the dedicated grid of the Decrypthon project.  This study argues that
preliminary work showed that the docking program required a lot of cpu
time [...] and will take advantage of desktop grid computing."

This bench reconstructs that pilot: a 6-protein cross-docking campaign on
a dedicated cluster, and the extrapolation that motivated going to WCG —
the full 168-protein workload is ~(168/6)^2 larger, out of reach for a
university grid but a fit for a volunteer one.
"""

from __future__ import annotations

import pytest

from repro import constants as C
from repro.analysis.report import render_table
from repro.core.packaging import PackagingPolicy, WorkUnitPlan
from repro.dedicated import DedicatedGridSimulation
from repro.maxdo.cost_model import CostModel
from repro.proteins.library import ProteinLibrary
from repro.units import SECONDS_PER_DAY, seconds_to_ydhms

#: A university-department cluster of the Decrypthon era.
PILOT_PROCESSORS = 64


def test_decrypthon_pilot(record_artifact, benchmark):
    library = ProteinLibrary.synthetic(n_proteins=6, seed=C.DEFAULT_SEED)
    cost_model = CostModel.calibrated(library)
    plan = WorkUnitPlan(cost_model, PackagingPolicy(target_hours=10.0))

    def run():
        grid = DedicatedGridSimulation(n_processors=PILOT_PROCESSORS)
        return grid.run_workunits(plan, lpt=True)

    result = benchmark(run)

    pilot_cpu = cost_model.total_reference_cpu()
    scale_up = (C.N_PROTEINS / 6) ** 2
    full_cpu_estimate = pilot_cpu * scale_up

    record_artifact(
        "decrypthon_pilot",
        render_table(["quantity", "value"], [
            ["pilot proteins", 6],
            ["pilot CPU time", str(seconds_to_ydhms(pilot_cpu))],
            ["pilot makespan on 64 procs",
             f"{result.makespan_s / SECONDS_PER_DAY:.1f} days"],
            ["cluster utilization", f"{result.utilization:.1%}"],
            ["scale-up to 168 proteins", f"x{scale_up:.0f}"],
            ["extrapolated full workload",
             str(seconds_to_ydhms(full_cpu_estimate))],
            ["full workload on the pilot cluster",
             f"{full_cpu_estimate / PILOT_PROCESSORS / SECONDS_PER_DAY / 365:.0f} years"],
        ]),
    )

    # The pilot's conclusion: tractable for 6 proteins on a department
    # cluster (days-to-weeks), hopeless for 168 (decades) -> volunteer grid.
    assert result.makespan_s < 60 * SECONDS_PER_DAY
    assert full_cpu_estimate / PILOT_PROCESSORS > 10 * 365 * SECONDS_PER_DAY
    # The quadratic scale-up is the paper's own extrapolation law.
    assert full_cpu_estimate == pytest.approx(
        C.TOTAL_REFERENCE_CPU_S, rel=0.45
    )
