"""Shared benchmark fixtures.

Each benchmark regenerates one of the paper's tables or figures: it
computes the artifact, asserts the qualitative shape the paper reports,
records a plain-text rendering under ``benchmarks/artifacts/`` and times
the core computation with pytest-benchmark.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core.campaign import CampaignPlan
from repro.core.packaging import PackagingPolicy, WorkUnitPlan
from repro.fluid import FluidCampaign
from repro.maxdo.cost_model import CostModel
from repro.proteins.library import ProteinLibrary

ARTIFACT_DIR = Path(__file__).parent / "artifacts"
_BENCH_DIR = Path(__file__).parent


def pytest_collection_modifyitems(items):
    """Mark everything under benchmarks/ with ``bench`` so suites can
    select or skip the benchmark tier (``-m bench`` / ``-m 'not bench'``)."""
    for item in items:
        if Path(str(item.fspath)).parent == _BENCH_DIR:
            item.add_marker(pytest.mark.bench)


@pytest.fixture(scope="session")
def record_artifact():
    """Writer for the rendered table/figure artifacts."""
    ARTIFACT_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        (ARTIFACT_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        print(f"\n--- {name} ---\n{text}\n")

    return write


@pytest.fixture(scope="session")
def record_data():
    """Writer for machine-readable artifact data (JSON next to the text)."""
    from repro.analysis.export import export_json

    ARTIFACT_DIR.mkdir(exist_ok=True)

    def write(name: str, payload: dict, experiment: str | None = None) -> None:
        export_json(ARTIFACT_DIR / f"{name}.json", payload, experiment=experiment)

    return write


@pytest.fixture(scope="session")
def record_bench_json():
    """Writer for engine performance benchmarks.

    Emits the machine-readable payload twice: under ``benchmarks/artifacts/``
    with the other artifacts, and as ``BENCH_<name>.json`` at the repo root
    where CI and the next session can find the headline numbers without
    digging.
    """
    from repro.analysis.export import export_json

    ARTIFACT_DIR.mkdir(exist_ok=True)
    repo_root = Path(__file__).parent.parent

    def write(name: str, payload: dict, experiment: str | None = None) -> None:
        export_json(
            ARTIFACT_DIR / f"bench_{name}.json", payload, experiment=experiment
        )
        export_json(
            repo_root / f"BENCH_{name}.json", payload, experiment=experiment
        )

    return write


@pytest.fixture(scope="session")
def library() -> ProteinLibrary:
    return ProteinLibrary.phase1()


@pytest.fixture(scope="session")
def cost_model(library) -> CostModel:
    return CostModel.calibrated(library)


@pytest.fixture(scope="session")
def campaign(library, cost_model) -> CampaignPlan:
    return CampaignPlan(library, cost_model)


@pytest.fixture(scope="session")
def deployed_plan(cost_model) -> WorkUnitPlan:
    """The as-deployed packaging (~3.3 h mean workunits, Figure 8)."""
    return WorkUnitPlan(cost_model, PackagingPolicy(target_hours=3.65))


@pytest.fixture(scope="session")
def fluid_result(campaign, deployed_plan):
    """One full-scale fluid campaign shared by the figure benches."""
    fluid = FluidCampaign(campaign, deployed_plan.duration_stats()["mean"])
    return fluid, fluid.run()
