"""Figure 1 — virtual full-time processors of World Community Grid.

Paper: VFTP grows from WCG's launch (Nov 2004) to ~75k by Dec 2007, with
weekend dips, Christmas 2005/2006 dips and a summer 2006 dip; ~55k on
average while HCMD ran.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import constants as C
from repro.analysis.report import paper_vs_measured, render_histogram
from repro.analysis.timeseries import WeeklySeries
from repro.grid.population import WCGPopulationModel


def test_fig1_wcg_vftp(record_artifact, record_data, benchmark):
    model = WCGPopulationModel.calibrated()

    daily = benchmark(model.daily_series, 0, 1120)
    record_data(
        "fig1_wcg_vftp",
        {"day": np.arange(1120), "vftp": daily},
        experiment="Figure 1",
    )

    weekly = WeeklySeries.from_daily(daily)
    # Render the growth curve as a coarse histogram-style chart: average
    # VFTP per quarter since launch.
    quarters = len(weekly) // 13
    per_quarter = weekly.values[: quarters * 13].reshape(quarters, 13).mean(axis=1)
    edges = np.arange(quarters + 1) * 13.0
    chart = render_histogram(
        edges, per_quarter, label=lambda lo, hi: f"weeks {lo:>3.0f}-{hi:<3.0f}"
    )

    project_days = np.arange(
        C.WCG_LAUNCH_TO_HCMD_DAYS, C.WCG_LAUNCH_TO_HCMD_DAYS + 182
    ).astype(float)
    # The paper's 54,947 comes from WCG's published totals, i.e. the trend;
    # the modulated curve sits a few percent below it (dips).
    project_avg = float(np.mean(model.trend(project_days)))

    week = daily[700:707]
    weekdays = (np.arange(700, 707) + 1) % 7
    weekend_ratio = week[weekdays >= 5].mean() / week[weekdays < 5].mean()

    comparison = paper_vs_measured([
        ("VFTP at launch", C.WCG_VFTP_AT_LAUNCH, model.trend(0.0)),
        ("average VFTP during HCMD", C.WCG_VFTP_DURING_PROJECT, project_avg),
        ("VFTP in Dec 2007", C.WCG_VFTP_DEC_2007, model.trend(1110.0)),
        ("weekend / weekday ratio", 1 - C.WEEKEND_DIP_FRACTION, weekend_ratio),
        ("christmas 2006 dip depth",
         0.82, float(model.vftp(769.0)) / float(model.trend(769.0))),
    ])
    record_artifact(
        "fig1_wcg_vftp", "quarterly average VFTP since launch:\n"
        + chart + "\n\n" + comparison
    )

    # Shape: global growth, weekend and holiday dips.
    assert (np.diff(per_quarter) > 0).all()
    assert weekend_ratio < 1.0
    assert float(model.vftp(769.0)) < 0.9 * float(model.trend(769.0))
    assert project_avg == pytest.approx(C.WCG_VFTP_DURING_PROJECT, rel=0.03)
