"""Ablation — vectorized vs per-pair interaction energy.

The HPC guideline behind the MAXDo engine: the pairwise LJ + electrostatic
kernel is evaluated with vectorized NumPy over bead-pair blocks.  This
bench quantifies the speedup over a naive per-pair Python loop and checks
both agree to near machine precision.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.report import render_table
from repro.maxdo.energy import (
    COULOMB_CONSTANT,
    DEBYE_LENGTH_A,
    DIELECTRIC,
    SOFTENING_A,
    pair_energies,
)
from repro.proteins.model import synthesize_protein
from repro.rng import stream


def _naive_pair_energies(receptor, ligand_coords, ligand):
    """Reference implementation: explicit double loop over bead pairs."""
    e_lj = 0.0
    e_elec = 0.0
    soft2 = SOFTENING_A**2
    for j in range(len(ligand_coords)):
        for i in range(receptor.n_beads):
            d = ligand_coords[j] - receptor.coords[i]
            r2 = float(d @ d) + soft2
            r = np.sqrt(r2)
            sigma = ligand.radii[j] + receptor.radii[i]
            eps = np.sqrt(ligand.epsilons[j] * receptor.epsilons[i])
            s6 = (sigma**2 / r2) ** 3
            e_lj += eps * (s6 * s6 - 2.0 * s6)
            qq = ligand.charges[j] * receptor.charges[i]
            e_elec += COULOMB_CONSTANT / DIELECTRIC * qq * np.exp(-r / DEBYE_LENGTH_A) / r
    return e_lj, e_elec


@pytest.fixture(scope="module")
def pair():
    receptor = synthesize_protein("R", 120, stream(3, "abl-r"))
    ligand = synthesize_protein("L", 90, stream(3, "abl-l"))
    t = np.array([receptor.bounding_radius + ligand.bounding_radius + 4, 0, 0])
    return receptor, ligand, ligand.transformed(np.eye(3), t)


def test_vectorized_kernel(pair, benchmark, record_artifact):
    receptor, ligand, coords = pair
    import time

    vec = benchmark(
        pair_energies,
        receptor.coords, receptor.radii, receptor.epsilons, receptor.charges,
        coords, ligand.radii, ligand.epsilons, ligand.charges,
    )
    t0 = time.perf_counter()
    naive = _naive_pair_energies(receptor, coords, ligand)
    naive_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    pair_energies(
        receptor.coords, receptor.radii, receptor.epsilons, receptor.charges,
        coords, ligand.radii, ligand.epsilons, ligand.charges,
    )
    vec_s = time.perf_counter() - t0

    record_artifact(
        "ablation_energy_kernel",
        render_table(
            ["kernel", "E_lj", "E_elec", "time (ms)"],
            [
                ["vectorized", f"{vec[0]:.6f}", f"{vec[1]:.6f}", f"{vec_s * 1e3:.2f}"],
                ["naive loop", f"{naive[0]:.6f}", f"{naive[1]:.6f}",
                 f"{naive_s * 1e3:.2f}"],
            ],
        )
        + f"\nspeedup: {naive_s / max(vec_s, 1e-9):.0f}x",
    )

    assert vec[0] == pytest.approx(naive[0], rel=1e-9)
    assert vec[1] == pytest.approx(naive[1], rel=1e-9)
    assert naive_s > 5 * vec_s  # vectorization must pay


def test_naive_kernel_for_scale(pair, benchmark):
    """Time the reference loop so the speedup is visible in the table."""
    receptor, ligand, coords = pair
    benchmark.pedantic(
        _naive_pair_energies, args=(receptor, coords, ligand),
        rounds=1, iterations=1,
    )
