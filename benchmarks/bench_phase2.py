"""Phase II at 4,096 proteins on the sharded campaign engine.

Section 7 sizes phase II (4,000+ proteins, docking points cut 100x) but
the paper never executes it — the workload only fits a production grid.
This bench *runs* it: a 4,096-protein campaign with the phase-II point
reduction, shrunk by ``scale`` exactly the way :func:`repro.boinc.
simulator.scaled_phase1` shrinks phase I, partitioned into K shards by
:mod:`repro.boinc.sharding` and executed end to end on a process pool.

What is measured and recorded (``BENCH_phase2.json``):

* per-shard wall times from a sequential (``n_workers=1``) pass — the
  ground truth for scaling analysis;
* the measured wall of a pooled (``n_workers=2``) pass, **labelled with
  the machine's core count** — on a single-core box the pool cannot beat
  sequential and the bench does not pretend otherwise;
* an LPT (longest-processing-time) critical-path projection of the
  campaign wall at 1/2/4 workers, ``"mode": "projected"`` — what the
  measured shard walls imply on a machine with that many free cores;
* the near-linear-scaling flag: projected speedup at 4 workers >= 3x;
* bit-identity of the merged result across worker counts (the merge
  contract: the pool is an execution detail, not an experiment knob).

Smoke mode (``REPRO_BENCH_SMOKE=1``) shrinks the library ~64x so the
whole file runs in seconds, keeps the identity assertions, and guards
against a gross (>50%) sharding-overhead regression vs the monolithic
engine — mirroring ``bench_des_kernel.py``.
"""

from __future__ import annotations

import hashlib
import json
import os
from time import perf_counter

import pytest

from repro import CampaignConfig, constants as C
from repro.boinc.server import ServerConfig
from repro.boinc.sharding import ShardPlan
from repro.boinc.simulator import VolunteerGridSimulation
from repro.boinc.validator import ValidationPolicy
from repro.maxdo.cost_model import CostModel
from repro.proteins.library import ProteinLibrary

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: the phase-II library (Section 7), shrunk ~64x for the smoke tier
N_PROTEINS = 512 if SMOKE else 4_096
#: further shrink factor on docking points, scaled_phase1-style; 4 keeps
#: the mean workunit near one reference hour — large enough that fetch /
#: report latencies stay second-order, the regime the sizing model assumes
SCALE = 4.0
N_SHARDS = 4
SEED = 42
HORIZON_WEEKS = 40.0
#: headroom over the ~26-week auto-sizing so the campaign completes well
#: inside the horizon even with the phase-II duration mix
HOST_HEADROOM = 1.3

#: sanity floor on sharding overhead: the summed sequential shard walls
#: must stay within 2x of the monolithic wall (smoke) / 1.5x (full) —
#: sharding buys parallelism, it must not burn the budget it frees up.
MAX_OVERHEAD_RATIO = 2.0 if SMOKE else 1.5
#: the acceptance bar: LPT-projected speedup at 4 workers over 1
NEAR_LINEAR_SPEEDUP = 3.0


def _phase2_simulation(shards: ShardPlan | None) -> VolunteerGridSimulation:
    """The scaled phase-II campaign, optionally sharded."""
    sum_nsep = max(
        N_PROTEINS,
        round(
            C.SUM_NSEP * N_PROTEINS / C.N_PROTEINS
            / C.PHASE2_POINT_REDUCTION / SCALE
        ),
    )
    library = ProteinLibrary.synthetic(
        n_proteins=N_PROTEINS, sum_nsep=sum_nsep, seed=SEED
    )
    cost_model = CostModel.calibrated(library, seed=SEED)
    config = CampaignConfig(
        seed=SEED,
        scale=SCALE,
        horizon_weeks=HORIZON_WEEKS,
        # phase II runs on BOINC with the bounds validator calibrated
        # during phase I (Section 8) — no quorum warm-up period
        server=ServerConfig(validation=ValidationPolicy(switch_time=0.0)),
    )
    sim = VolunteerGridSimulation(library, cost_model, config)
    config = config.with_(
        n_hosts_peak=round(HOST_HEADROOM * sim.n_hosts_peak), shards=shards
    )
    return VolunteerGridSimulation(library, cost_model, config)


def _fingerprint(result) -> str:
    """Digest of everything observable about a campaign result."""
    m = result.metrics()
    payload = {
        "completion_time": result.completion_time,
        "registry": result.telemetry.registry.as_dict(),
        "metrics": {f: v for f, v in vars(m).items()},
        "fault_report": result.fault_report().as_dict(),
        "batch_completion": result.batch_completion_s.tolist(),
        "n_hosts": result.n_hosts,
    }
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()
    ).hexdigest()


def _lpt_wall(walls: list[float], n_workers: int) -> float:
    """Campaign wall under LPT list scheduling on ``n_workers`` cores."""
    loads = [0.0] * n_workers
    for w in sorted(walls, reverse=True):
        loads[loads.index(min(loads))] += w
    return max(loads)


@pytest.fixture(scope="module")
def phase2_runs():
    """One sequential and one pooled pass over the sharded campaign."""
    runs = {}
    for label, workers in (("sequential", 1), ("pooled", 2)):
        sim = _phase2_simulation(ShardPlan(n_shards=N_SHARDS, n_workers=workers))
        t0 = perf_counter()
        result = sim.run()
        runs[label] = {
            "wall_s": perf_counter() - t0,
            "result": result,
            "n_workunits": sim.plan.total_workunits(),
            "n_hosts_peak": sim.n_hosts_peak,
        }
    return runs


def test_phase2_campaign_completes(phase2_runs):
    """The 4,096-protein campaign must finish inside the horizon."""
    result = phase2_runs["sequential"]["result"]
    assert result.completion_time is not None
    assert result.completion_time <= HORIZON_WEEKS * 7 * 86400
    assert result.server.n_validated == result.server.n_workunits


def test_merged_result_identical_across_worker_counts(phase2_runs):
    seq, pool = phase2_runs["sequential"], phase2_runs["pooled"]
    assert _fingerprint(seq["result"]) == _fingerprint(pool["result"])


def test_phase2_scaling(phase2_runs, record_bench_json, record_artifact):
    seq = phase2_runs["sequential"]
    pool = phase2_runs["pooled"]
    walls = seq["result"].shard_walls
    assert walls is not None and len(walls) == N_SHARDS

    projected = {
        w: _lpt_wall(walls, w) for w in (1, 2, 4)
    }
    speedup_4 = projected[1] / projected[4]
    overhead_ratio = sum(walls) / seq["wall_s"] if seq["wall_s"] else 1.0
    result = seq["result"]
    payload = {
        "n_proteins": N_PROTEINS,
        "scale": SCALE,
        "seed": SEED,
        "n_shards": N_SHARDS,
        "n_workunits": int(seq["n_workunits"]),
        "n_hosts_peak": int(seq["n_hosts_peak"]),
        "n_hosts": int(result.n_hosts),
        "completion_weeks": result.completion_time / (7 * 86400),
        "smoke": SMOKE,
        "machine_cores": os.cpu_count(),
        "shard_walls_s": [round(w, 3) for w in walls],
        "measured": {
            "mode": "measured",
            "wall_s_by_workers": {
                "1": round(seq["wall_s"], 3),
                "2": round(pool["wall_s"], 3),
            },
        },
        "projected": {
            "mode": "projected",
            "note": "LPT critical path over the measured sequential "
                    "shard walls; what the plan yields with that many "
                    "free cores",
            "wall_s_by_workers": {
                str(w): round(v, 3) for w, v in projected.items()
            },
            "speedup_4_workers": round(speedup_4, 3),
        },
        "near_linear_scaling": bool(speedup_4 >= NEAR_LINEAR_SPEEDUP),
        "outcome_bit_identical": _fingerprint(seq["result"])
        == _fingerprint(pool["result"]),
    }
    record_bench_json(
        "phase2", payload,
        experiment="sharded phase-II campaign (4,096 proteins)",
    )
    record_artifact(
        "phase2_scaling",
        "\n".join([
            f"phase II sharded: {N_PROTEINS} proteins, "
            f"{seq['n_workunits']:,} workunits, {N_SHARDS} shards",
            f"shard walls (s): "
            + ", ".join(f"{w:.1f}" for w in walls),
            f"projected wall 1/2/4 workers (s): "
            + "/".join(f"{projected[w]:.1f}" for w in (1, 2, 4)),
            f"projected speedup at 4 workers: {speedup_4:.2f}x "
            f"(near-linear bar: {NEAR_LINEAR_SPEEDUP}x)",
            f"bit-identical across worker counts: "
            f"{payload['outcome_bit_identical']}",
        ]),
    )
    assert payload["outcome_bit_identical"]
    # balanced shards: the plan is work-balanced, so the critical path
    # must sit close to the mean — that is what near-linear scaling *is*
    assert speedup_4 >= NEAR_LINEAR_SPEEDUP
    assert overhead_ratio <= MAX_OVERHEAD_RATIO


def test_sharding_overhead_vs_monolithic(record_artifact):
    """Summed shard walls must stay near the monolithic wall.

    Run at smoke scale only — at 4,096 proteins the monolithic pass
    would double an already-long bench for a ratio the smoke tier pins
    just as well.
    """
    if not SMOKE:
        pytest.skip("overhead ratio is pinned by the smoke tier")
    t0 = perf_counter()
    mono = _phase2_simulation(None).run()
    mono_wall = perf_counter() - t0
    sharded = _phase2_simulation(ShardPlan(n_shards=N_SHARDS)).run()
    total_shard_wall = sum(sharded.shard_walls)
    ratio = total_shard_wall / mono_wall
    record_artifact(
        "phase2_overhead",
        f"monolithic {mono_wall:.2f}s vs summed shard walls "
        f"{total_shard_wall:.2f}s (ratio {ratio:.2f}, "
        f"cap {MAX_OVERHEAD_RATIO})",
    )
    assert mono.completion_time is not None
    assert ratio <= MAX_OVERHEAD_RATIO
