"""Ablation — receptor release order (Section 5.1's deployment choice).

"They also decided to first launch the protein that required less
computing time.  This choice was motivated by the fact that it can be
easier to detect the failures on the beginning of the project [...] these
new faster devices can work on more time consuming workunits."

This bench compares the paper's least-cost-first order against
largest-first and random on the early-feedback observables: how soon the
first receptor batches complete (results shipped to the scientists) and
the Figure 7 proteins-vs-work anchor.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.report import render_table
from repro.boinc.simulator import scaled_phase1
from repro.core.campaign import CampaignPlan
from repro.units import SECONDS_PER_WEEK

POLICIES = ("least-cost", "largest-first", "random")


def test_release_order_des(record_artifact, benchmark):
    def run_all():
        out = {}
        for policy in POLICIES:
            sim = scaled_phase1(
                scale=250, n_proteins=14, release_policy=policy
            )
            out[policy] = sim.run()
        return out

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for policy, res in results.items():
        batch_weeks = np.sort(res.batch_completion_s) / SECONDS_PER_WEEK
        k = max(1, len(batch_weeks) // 4)
        rows.append([
            policy,
            f"{batch_weeks[:k].mean():.1f}",
            f"{np.nanmax(batch_weeks):.1f}",
            f"{res.completion_weeks:.1f}" if res.completion_weeks else "-",
        ])
    record_artifact(
        "ablation_release_order",
        render_table(
            ["policy", "first-quartile batch done (week)",
             "last batch done (week)", "campaign complete (week)"],
            rows,
        ),
    )

    def first_quartile(res):
        weeks = np.sort(res.batch_completion_s)
        return weeks[: max(1, len(weeks) // 4)].mean()

    # Least-cost-first delivers the first finished proteins much earlier
    # than largest-first — the paper's early-failure-detection rationale.
    assert first_quartile(results["least-cost"]) < first_quartile(
        results["largest-first"]
    )
    # Total completion is roughly policy-independent (same work, same fleet).
    times = [r.completion_weeks for r in results.values()]
    assert max(times) / min(times) < 1.4


def test_release_order_figure7_shape(library, cost_model, record_artifact, benchmark):
    """The Figure 7 anchor under each policy, at 47% of the work done."""

    def snapshots():
        out = []
        for policy in CampaignPlan.POLICIES:
            plan = CampaignPlan(library, cost_model, policy=policy)
            out.append((policy, plan.snapshot(0.47 * plan.total_work)))
        return out

    snaps = benchmark(snapshots)
    rows = [
        [policy, f"{snap.protein_fraction_complete:.0%}"]
        for policy, snap in snaps
    ]
    record_artifact(
        "ablation_release_order_fig7",
        "proteins fully docked when 47% of the work is done:\n"
        + render_table(["policy", "proteins complete"], rows),
    )
    by_policy = {r[0]: float(r[1].rstrip("%")) for r in rows}
    assert by_policy["least-cost"] > 80  # the paper's 85%-at-47% shape
    assert by_policy["largest-first"] < 20  # inverted under LPT
