"""Figure 8 — distribution of the real workunits sent to volunteers.

Paper: deployed workunits were tuned to 3-4 h on the reference processor
(average 3h18m47s), while the average device-side run time was ~13 h,
confirming the 3.96 net speed-down (13 h / 3.96 ~ 3h15).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import constants as C
from repro.analysis.distributions import distribution_summary, hour_bins
from repro.analysis.report import paper_vs_measured, render_histogram
from repro.boinc.simulator import scaled_phase1
from repro.units import SECONDS_PER_HOUR


def test_fig8_reference_distribution(
    deployed_plan, record_artifact, record_data, benchmark
):
    """The deployed packaging on the reference processor (full scale)."""
    edges, counts = benchmark(
        deployed_plan.duration_histogram, hour_bins(8, 0.5)
    )
    record_data(
        "fig8_reference_workunits",
        {"bin_edges_s": edges, "counts": counts},
        experiment="Figure 8",
    )
    chart = render_histogram(
        edges, counts,
        label=lambda lo, hi: (
            f"{lo / SECONDS_PER_HOUR:>4.1f}-{hi / SECONDS_PER_HOUR:<4.1f} h"
        ),
    )
    stats = deployed_plan.duration_stats()
    comparison = paper_vs_measured([
        ("workunits", C.RESULTS_EFFECTIVE, stats["count"]),
        ("mean reference duration (s)", C.DEPLOYED_WU_MEAN_S, stats["mean"]),
        ("bulk range (h)", "3-4", "see histogram"),
    ])
    record_artifact("fig8_reference_workunits", chart + "\n\n" + comparison)

    assert stats["mean"] == pytest.approx(C.DEPLOYED_WU_MEAN_S, rel=0.03)
    # The deployed count ~ the effective result count of Section 5.1.
    assert stats["count"] == pytest.approx(C.RESULTS_EFFECTIVE, rel=0.05)
    # Most of the mass sits in the paper's 3-4 h band.
    in_band = counts[(edges[:-1] >= 3 * 3600) & (edges[:-1] < 4 * 3600)].sum()
    assert in_band / counts.sum() > 0.4


def test_fig8_device_run_times(record_artifact, benchmark):
    """Device-side run times from the volunteer DES (scaled campaign)."""
    sim = scaled_phase1(scale=100, n_proteins=20)

    result = benchmark.pedantic(sim.run, rounds=1, iterations=1)

    runs_h = np.asarray(result.telemetry.run_active_s) / 3600.0
    refs_h = np.asarray(result.telemetry.run_reference_s) / 3600.0
    summary = distribution_summary(runs_h)
    measured_speed_down = float((runs_h / refs_h).mean())

    counts, edges = np.histogram(np.clip(runs_h, 0, 48), bins=24)
    chart = render_histogram(
        np.asarray(edges, dtype=float), counts.astype(float),
        label=lambda lo, hi: f"{lo:>4.1f}-{hi:<4.1f} h",
    )
    comparison = paper_vs_measured([
        ("mean device run (h), scale-matched",
         float(refs_h.mean()) * C.SPEED_DOWN_NET, summary["mean"]),
        ("device-time / reference-time", C.SPEED_DOWN_NET, measured_speed_down),
        ("heavy right tail (max/mean)", ">3", summary["max"] / summary["mean"]),
    ])
    record_artifact("fig8_device_run_times", chart + "\n\n" + comparison)

    assert measured_speed_down == pytest.approx(C.SPEED_DOWN_NET, rel=0.20)
    assert summary["max"] > 2 * summary["mean"]  # volunteer heterogeneity
