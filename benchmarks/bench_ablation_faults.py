"""Ablation — fault injection vs campaign redundancy (Section 5.2).

The paper's validation pipeline (line counts, value ranges, quorum
comparison) exists because volunteer results arrive corrupted: "check if
the values in the file are within a valid range".  This bench sweeps the
client-side corruption probability and measures what the defences cost —
every corrupted result is caught and reissued, so redundancy (results
disclosed per effective result) must rise monotonically with the fault
rate while validated coverage stays complete.
"""

from __future__ import annotations

import os

from repro.analysis.report import render_table
from repro.boinc import CampaignConfig, scaled_phase1
from repro.faults import CorruptionFaults, FaultPlan

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: (scale, n_proteins): the smoke tier shrinks the campaign ~3x
CAMPAIGN = (900, 5) if SMOKE else (400, 8)

CORRUPTION_PROBS = (0.0, 0.1, 0.3)


def test_corruption_rate_sweep(record_artifact, record_bench_json, benchmark):
    scale, n_proteins = CAMPAIGN

    def sweep():
        out = {}
        for prob in CORRUPTION_PROBS:
            plan = (
                FaultPlan.none()
                if prob == 0.0
                else FaultPlan(corruption=CorruptionFaults(prob=prob))
            )
            sim = scaled_phase1(
                scale=scale, n_proteins=n_proteins,
                config=CampaignConfig(faults=plan),
            )
            result = sim.run()
            m = result.metrics()
            report = result.fault_report()
            out[prob] = {
                "redundancy": m.redundancy,
                "useful_fraction": m.useful_result_fraction,
                "invalid": result.server.stats.invalid,
                "injected": report.injected.get("corrupted", 0),
                "validated": report.validated,
                "total": report.total_workunits,
                "completion_weeks": result.completion_weeks,
            }
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        [
            f"{prob:.1f}",
            f"{r['redundancy']:.3f}",
            f"{r['useful_fraction']:.3f}",
            str(r["injected"]),
            str(r["invalid"]),
            f"{r['validated']}/{r['total']}",
        ]
        for prob, r in results.items()
    ]
    record_artifact(
        "ablation_faults_corruption",
        "client corruption probability vs redundancy factor (every\n"
        "corrupted upload fails the Section 5.2 range check and is\n"
        "reissued, so the defence cost shows up as extra disclosed\n"
        "results per effective result):\n"
        + render_table(
            [
                "P(corrupt)", "redundancy", "useful fraction",
                "injected", "rejected", "validated",
            ],
            rows,
        ),
    )
    record_bench_json(
        "ablation_faults_corruption",
        {str(p): r for p, r in results.items()},
    )

    probs = list(CORRUPTION_PROBS)
    # Corruption injected -> caught -> reissued: monotone defence cost.
    for lo, hi in zip(probs, probs[1:]):
        assert results[hi]["redundancy"] > results[lo]["redundancy"]
        assert results[hi]["useful_fraction"] < results[lo]["useful_fraction"]
        assert results[hi]["invalid"] > results[lo]["invalid"]
    # The defences keep coverage complete: every workunit still validates.
    for r in results.values():
        assert r["validated"] == r["total"]
        assert r["completion_weeks"] is not None
