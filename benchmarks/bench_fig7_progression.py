"""Figure 7 — HCMD project progression snapshots.

Paper: four snapshots (2007-03-20, 04-11, 05-02, 06-11); on 05-02 "85% of
the proteins were docked, but this represents only 47% of the total
computation" — the time needed per protein is very different.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import constants as C
from repro.analysis.progression import progression_curve
from repro.analysis.report import paper_vs_measured, render_table

#: Project weeks of the paper's four snapshot dates (project start
#: 2006-12-19).
SNAPSHOT_WEEKS = {
    "2007-03-20": 13.0,
    "2007-04-11": 16.1,
    "2007-05-02": 19.1,
    "2007-06-11": 24.9,
}


def test_fig7_progression(fluid_result, campaign, record_artifact, benchmark):
    fluid, result = fluid_result

    def snapshots():
        return {
            date: fluid.snapshot_at_week(result, week)
            for date, week in SNAPSHOT_WEEKS.items()
        }

    snaps = benchmark(snapshots)

    rows = []
    for date, snap in snaps.items():
        rows.append([
            date,
            f"{snap.protein_fraction_complete:.0%}",
            f"{snap.work_fraction:.0%}",
        ])
    table = render_table(
        ["snapshot", "proteins fully docked", "computation done"], rows
    )

    snap_0502 = snaps["2007-05-02"]
    comparison = paper_vs_measured([
        ("proteins docked on 05-02", C.PROGRESSION_SNAPSHOT_PROTEIN_FRACTION,
         snap_0502.protein_fraction_complete),
        ("work done on 05-02", C.PROGRESSION_SNAPSHOT_WORK_FRACTION,
         snap_0502.work_fraction),
    ])

    # Render the 05-02 cumulative curve at protein deciles.
    x, done, total = progression_curve(campaign, snap_0502)
    deciles = np.linspace(0, len(x) - 1, 11).astype(int)
    curve = render_table(
        ["protein rank", "cumulative % of work", "computed %"],
        [[int(x[i]), f"{total[i]:.1f}", f"{done[i]:.1f}"] for i in deciles],
    )
    record_artifact(
        "fig7_progression", table + "\n\n" + comparison + "\n\n" + curve
    )

    assert snap_0502.protein_fraction_complete == pytest.approx(0.85, abs=0.06)
    assert snap_0502.work_fraction == pytest.approx(0.47, abs=0.06)
    # Monotone progression across the four snapshots.
    fractions = [s.work_fraction for s in snaps.values()]
    assert fractions == sorted(fractions)
    # Final snapshot: effectively complete.
    assert snaps["2007-06-11"].work_fraction > 0.9
