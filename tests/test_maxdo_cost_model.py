"""Tests for repro.maxdo.cost_model: Section 4.1 / Table 1 / Figure 3."""

from __future__ import annotations

import numpy as np
import pytest

from repro import constants as C
from repro.maxdo.cost_model import CostModel, fit_line


class TestCalibrationTargets:
    """The phase-1 matrix must hit the paper's anchors."""

    def test_total_is_exact(self, phase1_cost_model):
        assert phase1_cost_model.total_reference_cpu() == pytest.approx(
            C.TOTAL_REFERENCE_CPU_S, rel=1e-12
        )

    def test_table1_mean(self, phase1_cost_model):
        assert phase1_cost_model.statistics()["average"] == pytest.approx(
            C.MCT_MEAN_S, rel=0.02
        )

    def test_table1_median(self, phase1_cost_model):
        assert phase1_cost_model.statistics()["median"] == pytest.approx(
            C.MCT_MEDIAN_S, rel=0.03
        )

    def test_table1_std(self, phase1_cost_model):
        assert phase1_cost_model.statistics()["standard deviation"] == pytest.approx(
            C.MCT_STD_S, rel=0.10
        )

    def test_table1_extremes(self, phase1_cost_model):
        stats = phase1_cost_model.statistics()
        assert stats["min"] == pytest.approx(C.MCT_MIN_S, abs=3.0)
        assert stats["max"] == pytest.approx(C.MCT_MAX_S, rel=0.15)

    def test_top10_share(self, phase1_cost_model):
        # "10 proteins represent 30% of the total processing time."
        assert phase1_cost_model.top_share(10) == pytest.approx(
            C.TOP10_PROTEIN_TIME_SHARE, abs=0.06
        )

    def test_deterministic(self, phase1_library, phase1_cost_model):
        again = CostModel.calibrated(phase1_library)
        np.testing.assert_array_equal(again.mct, phase1_cost_model.mct)

    def test_all_entries_positive(self, phase1_cost_model):
        assert (phase1_cost_model.mct > 0).all()


class TestLinearModel:
    def test_linear_in_positions(self, small_cost_model):
        one = small_cost_model.ct(0, 1, 1, 21)
        assert small_cost_model.ct(0, 1, 7, 21) == pytest.approx(7 * one)

    def test_linear_in_orientations(self, small_cost_model):
        one = small_cost_model.ct(0, 1, 1, 1)
        assert small_cost_model.ct(0, 1, 1, 21) == pytest.approx(21 * one)

    def test_ct_iter_definition(self, small_cost_model):
        assert small_cost_model.ct_iter(2, 3) == pytest.approx(
            small_cost_model.seconds_per_position(2, 3) / 21
        )

    def test_asymmetric(self, small_cost_model):
        # MAXDo is not symmetric: ct(p1, p2) != ct(p2, p1) in general.
        m = small_cost_model.mct
        assert not np.allclose(m, m.T)

    def test_zero_counts(self, small_cost_model):
        assert small_cost_model.ct(0, 0, 0, 21) == 0.0

    def test_negative_counts_rejected(self, small_cost_model):
        with pytest.raises(ValueError):
            small_cost_model.ct(0, 0, -1, 21)

    def test_formula1_equivalence(self, small_library, small_cost_model):
        # total == sum Nsep(p1) * 21 * ct_iter(p1, p2).
        manual = sum(
            small_library.nsep[i] * 21 * small_cost_model.ct_iter(i, j)
            for i in range(len(small_library))
            for j in range(len(small_library))
        )
        assert small_cost_model.total_reference_cpu() == pytest.approx(manual)


class TestMeasuredRuns:
    def test_reproducible(self, small_cost_model):
        # Property 1 of Section 4.1: reproducible computing time.
        a = small_cost_model.measured_ct(1, 2, 5, 21)
        b = small_cost_model.measured_ct(1, 2, 5, 21)
        assert a == b

    def test_close_to_model(self, small_cost_model):
        model = small_cost_model.ct(1, 2, 5, 21)
        measured = small_cost_model.measured_ct(1, 2, 5, 21)
        assert measured == pytest.approx(model, rel=0.12, abs=5.0)

    def test_includes_overhead(self, small_cost_model):
        assert small_cost_model.measured_ct(0, 0, 0, 0) > 0


class TestLinearityExperiment:
    """Figure 3: correlation ~0.99 over sampled couples."""

    def test_correlations_above_paper_threshold(self, small_cost_model):
        rot_fits, sep_fits = small_cost_model.linearity_experiment(n_samples=40)
        assert min(f.correlation for f in rot_fits) >= C.LINEARITY_MIN_CORRELATION
        assert min(f.correlation for f in sep_fits) >= C.LINEARITY_MIN_CORRELATION

    def test_slopes_match_ct_iter_scale(self, small_cost_model):
        rot_fits, _ = small_cost_model.linearity_experiment(n_samples=10)
        for fit in rot_fits:
            assert fit.slope > 0

    def test_small_intercept(self, small_cost_model):
        # The paper assumes b ~ 0; our overhead is a couple of seconds.
        rot_fits, _ = small_cost_model.linearity_experiment(n_samples=10)
        for fit in rot_fits:
            assert abs(fit.intercept) < 0.2 * fit.slope * 21 + 30


class TestFitLine:
    def test_exact_line(self):
        x = np.arange(10.0)
        fit = fit_line(x, 3.0 * x + 1.0)
        assert fit.slope == pytest.approx(3.0)
        assert fit.intercept == pytest.approx(1.0)
        assert fit.correlation == pytest.approx(1.0)

    def test_rejects_mismatched(self):
        with pytest.raises(ValueError):
            fit_line(np.arange(3.0), np.arange(4.0))


class TestValidation:
    def test_rejects_non_square(self, small_library):
        with pytest.raises(ValueError):
            CostModel(np.ones((3, 4)), np.ones(3, dtype=int))

    def test_rejects_nonpositive_times(self, small_library):
        m = np.ones((3, 3))
        m[1, 1] = 0.0
        with pytest.raises(ValueError):
            CostModel(m, np.ones(3, dtype=int))

    def test_rejects_mismatched_nsep(self):
        with pytest.raises(ValueError):
            CostModel(np.ones((3, 3)), np.ones(4, dtype=int))
