"""Smoke tests: the runnable examples must stay runnable.

Only the fast examples run here (the campaign-scale ones take minutes and
are exercised by the benchmarks); each is executed in-process with its
stdout captured.
"""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "phase2_planning.py",
    "binding_sites.py",
    "docking_single_couple.py",
]


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_example_runs(name, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [name])
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 200  # produced a real report


def test_quickstart_prints_paper_numbers(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["quickstart.py"])
    runpy.run_path(str(EXAMPLES / "quickstart.py"), run_name="__main__")
    out = capsys.readouterr().out
    assert "1,488:237:19:45:54" in out
    assert "49,481,544" in out


def test_all_examples_exist_and_are_documented():
    names = sorted(p.name for p in EXAMPLES.glob("*.py"))
    assert len(names) >= 8
    for p in EXAMPLES.glob("*.py"):
        head = p.read_text().splitlines()[:3]
        assert any('"""' in line for line in head), f"{p.name} lacks a docstring"
