"""Tests for repro.analysis.export: CSV/JSON artifact exporters."""

from __future__ import annotations

import csv
import json

import numpy as np
import pytest

from repro.analysis.export import (
    export_histogram_csv,
    export_json,
    export_series_csv,
)


class TestSeriesCsv:
    def test_roundtrip(self, tmp_path):
        path = export_series_csv(
            tmp_path / "s.csv",
            {"week": np.arange(3), "vftp": np.array([1.5, 2.0, 2.5])},
        )
        with path.open() as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == ["week", "vftp"]
        assert rows[1] == ["0", "1.5"]
        assert len(rows) == 4

    def test_integers_written_without_decimal(self, tmp_path):
        path = export_series_csv(tmp_path / "s.csv", {"n": [1.0, 2.0]})
        text = path.read_text()
        assert "1.0" not in text

    def test_mismatched_lengths_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            export_series_csv(tmp_path / "s.csv", {"a": [1], "b": [1, 2]})

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            export_series_csv(tmp_path / "s.csv", {})

    def test_creates_parent_dirs(self, tmp_path):
        path = export_series_csv(tmp_path / "deep" / "s.csv", {"a": [1]})
        assert path.exists()

    def test_deterministic(self, tmp_path):
        cols = {"x": np.linspace(0, 1, 7)}
        a = export_series_csv(tmp_path / "a.csv", cols).read_text()
        b = export_series_csv(tmp_path / "b.csv", cols).read_text()
        assert a == b


class TestHistogramCsv:
    def test_rows(self, tmp_path):
        path = export_histogram_csv(
            tmp_path / "h.csv", np.array([0.0, 1.0, 2.0]), np.array([5, 7])
        )
        with path.open() as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == ["bin_low", "bin_high", "count"]
        assert rows[1] == ["0", "1", "5"]

    def test_shape_validation(self, tmp_path):
        with pytest.raises(ValueError):
            export_histogram_csv(
                tmp_path / "h.csv", np.array([0.0, 1.0]), np.array([1, 2])
            )


class TestJson:
    def test_metadata_embedded(self, tmp_path):
        path = export_json(
            tmp_path / "a.json", {"vftp": np.array([1.0, 2.0])},
            experiment="Figure 6a",
        )
        doc = json.loads(path.read_text())
        assert doc["_meta"]["experiment"] == "Figure 6a"
        assert "Volunteer Grid" in doc["_meta"]["paper"]
        assert doc["vftp"] == [1.0, 2.0]

    def test_numpy_scalars_serialized(self, tmp_path):
        path = export_json(
            tmp_path / "a.json",
            {"n": np.int64(5), "x": np.float64(2.5), "nested": {"v": np.arange(2)}},
        )
        doc = json.loads(path.read_text())
        assert doc["n"] == 5
        assert doc["nested"]["v"] == [0, 1]

    def test_deterministic(self, tmp_path):
        payload = {"b": 1, "a": [2, 3]}
        x = export_json(tmp_path / "x.json", payload).read_text()
        y = export_json(tmp_path / "y.json", payload).read_text()
        assert x == y


class TestEndToEndExport:
    def test_fluid_series_exports(self, tmp_path, phase1_library, phase1_cost_model):
        from repro.core.campaign import CampaignPlan
        from repro.fluid import FluidCampaign

        campaign = CampaignPlan(phase1_library, phase1_cost_model)
        result = FluidCampaign(campaign, 12_000.0).run()
        path = export_series_csv(
            tmp_path / "fig6a.csv",
            {
                "week": result.weeks,
                "vftp": result.vftp,
                "results_useful": result.results_useful,
            },
        )
        with path.open() as fh:
            rows = list(csv.reader(fh))
        assert len(rows) == len(result.weeks) + 1
