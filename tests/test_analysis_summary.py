"""Tests for repro.analysis.summary: the one-page reproduction report."""

from __future__ import annotations

import pytest

from repro.analysis.summary import full_report


@pytest.fixture(scope="module")
def report() -> str:
    return full_report()


class TestFullReport:
    def test_all_sections_present(self, report):
        for title in (
            "Section 4.1 / Table 1",
            "Section 4.2 / Figure 4",
            "Section 5 / Figures 6-7",
            "Section 6 / Table 2",
            "Section 7 / Table 3",
        ):
            assert title in report

    def test_headline_numbers_present(self, report):
        assert "1,488:237:19:45:54" in report
        assert "49,481,544" in report
        assert "59,730" in report

    def test_every_row_has_a_measured_value(self, report):
        # No row of the report may come out empty or NaN-rendered.
        for line in report.splitlines():
            assert " nan" not in line.lower()

    def test_deltas_are_tight(self, report):
        # Every numeric delta printed stays within +-15% — the whole report
        # doubles as a regression gate for the calibrated pipeline.
        import re

        deltas = [
            abs(float(m.group(1)))
            for m in re.finditer(r"([+-]\d+(?:\.\d+)?)%", report)
        ]
        assert deltas, "no deltas rendered"
        assert max(deltas) <= 15.0

    def test_seed_changes_measured_not_structure(self):
        other = full_report(seed=1234)
        assert "Section 6 / Table 2" in other
        assert other != full_report()
