"""Chaos suite for repro.faults: seeded fault injection end to end.

Two contracts dominate:

* **bit-identity** — an empty :class:`FaultPlan` must leave seeded
  campaigns byte-for-byte identical to a campaign with no plan at all
  (pinned against recorded golden trace digests);
* **graceful degradation** — under every fault class the campaign still
  terminates, corrupted/sabotaged results are rejected or surfaced in
  the error budget, and a bounded reissue budget converts repeated
  failure into terminal ``failed`` workunits instead of a hang.

``REPRO_BENCH_SMOKE=1`` shrinks the campaign-scale cases to a quick
smoke tier (same assertions, smaller fleets).
"""

from __future__ import annotations

import hashlib
import os

import numpy as np
import pytest

from repro.boinc import CampaignConfig, scaled_phase1
from repro.boinc.server import GridServer, ServerConfig
from repro.boinc.validator import ValidationPolicy
from repro.core.workunit import WorkUnit
from repro.faults import (
    CorruptionFaults,
    CrashFaults,
    FaultPlan,
    OutageFaults,
    ReportLossFaults,
    ResultQuality,
    SabotageFaults,
    ServerUnavailable,
    corrupt_energies,
    truncate_table,
)
from repro.grid.des import Simulator
from repro.obs import Tracer

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

#: (scale, n_proteins) for campaign-scale cases — smoke tier shrinks them
CAMPAIGN = (900, 5) if SMOKE else (500, 8)

pytestmark = pytest.mark.chaos


def _trace_digest(tracer):
    h = hashlib.sha256()
    for e in tracer.sink.events:
        h.update(repr((e.etype, e.t_sim, tuple(sorted(e.fields.items())))).encode())
    return h.hexdigest()


def _run(plan=None, seed=None, scale=300, n_proteins=10, horizon_weeks=40.0):
    tracer = Tracer()
    cfg = CampaignConfig() if plan is None else CampaignConfig(faults=plan)
    kw = {} if seed is None else {"seed": seed}
    result = scaled_phase1(
        scale=scale, n_proteins=n_proteins, horizon_weeks=horizon_weeks,
        config=cfg, tracer=tracer, **kw,
    ).run()
    return result, tracer


# -- plan composition / parsing ---------------------------------------------


class TestFaultPlan:
    def test_none_is_disabled(self):
        plan = FaultPlan.none()
        assert not plan.enabled
        assert plan.host_state(seed=1, host_id=0) is None
        assert plan.outage_windows(seed=1, horizon_s=1e6) == ()
        assert plan.describe() == "no faults"

    def test_with_composes(self):
        plan = FaultPlan.none().with_(corruption=CorruptionFaults(prob=0.2))
        assert plan.enabled
        assert plan.corruption.prob == 0.2
        assert plan.crashes is None

    def test_from_spec_full(self):
        plan = FaultPlan.from_spec(
            "crash=5, corrupt=0.05, sabotage=0.02, outage=3x8, loss=0.1, "
            "maxreissue=7"
        )
        assert plan.crashes.mtbf_active_days == 5.0
        assert plan.corruption.prob == 0.05
        assert plan.sabotage.host_fraction == 0.02
        assert plan.outages == OutageFaults(n_windows=3, mean_duration_h=8.0)
        assert plan.report_loss.prob == 0.1
        assert plan.max_reissues == 7

    def test_from_spec_outage_default_duration(self):
        plan = FaultPlan.from_spec("outage=2")
        assert plan.outages == OutageFaults(n_windows=2, mean_duration_h=12.0)

    def test_from_spec_empty_is_none(self):
        assert FaultPlan.from_spec("") == FaultPlan.none()
        assert FaultPlan.from_spec("  ") == FaultPlan.none()

    def test_from_spec_rejects_unknown_key(self):
        with pytest.raises(ValueError, match="unknown fault spec key"):
            FaultPlan.from_spec("gremlins=3")
        with pytest.raises(ValueError, match="not key=value"):
            FaultPlan.from_spec("corrupt")

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            CrashFaults(mtbf_active_days=0.0)
        with pytest.raises(ValueError):
            CorruptionFaults(prob=1.5)
        with pytest.raises(ValueError):
            SabotageFaults(host_fraction=-0.1)
        with pytest.raises(ValueError):
            ReportLossFaults(prob=1.0)
        with pytest.raises(ValueError):
            FaultPlan(max_reissues=-1)

    def test_host_state_deterministic_and_stable_under_growth(self):
        plan = FaultPlan(sabotage=SabotageFaults(host_fraction=0.5))
        a = [plan.host_state(7, i).saboteur for i in range(50)]
        b = [plan.host_state(7, i).saboteur for i in range(50)]
        assert a == b
        assert any(a) and not all(a)

    def test_outage_windows_sorted_disjoint_within_horizon(self):
        plan = FaultPlan(outages=OutageFaults(n_windows=6, mean_duration_h=48.0))
        windows = plan.outage_windows(seed=3, horizon_s=5e6)
        assert windows == plan.outage_windows(seed=3, horizon_s=5e6)
        for (s0, e0), (s1, e1) in zip(windows, windows[1:]):
            assert e0 < s1
        for s, e in windows:
            assert 0.0 <= s < e <= 5e6


# -- the non-negotiable invariant -------------------------------------------


class TestEmptyPlanBitIdentity:
    """FaultPlan.none() campaigns match the pre-fault-subsystem traces."""

    # sha256 over (etype, t_sim, sorted fields) of every trace event.
    # Re-pinned when the span correlation fields (copy/receptor/ligand/host)
    # joined the event payloads, and again when the host-ledger events
    # (host.credit on the unfiltered trace) joined the stream; the
    # completion times are the original pre-fault-subsystem values — the
    # trajectory itself never moved.
    GOLDEN = {
        (300, 10, None): (
            "79fcb83764ddb813c707cef2489b89969daac37b09f4fcf26b017ccbf7df0b4b",
            10695940.733569192,
        ),
        (500, 8, 7): (
            "81d78900000eff0afc897000fbe2853259978af6a5a71aab294796a79035b871",
            8987859.456949988,
        ),
    }

    @pytest.mark.slow
    @pytest.mark.parametrize("scale,n_proteins,seed", sorted(
        GOLDEN, key=str), ids=["s300p10", "s500p8seed7"])
    def test_matches_pre_fault_golden_trace(self, scale, n_proteins, seed):
        digest, completion = self.GOLDEN[(scale, n_proteins, seed)]
        result, tracer = _run(
            plan=FaultPlan.none(), seed=seed, scale=scale, n_proteins=n_proteins
        )
        assert result.completion_time == completion
        assert _trace_digest(tracer) == digest

    def test_no_plan_equals_empty_plan(self):
        with_plan, tr_a = _run(plan=FaultPlan.none(), scale=700, n_proteins=6)
        without, tr_b = _run(plan=None, scale=700, n_proteins=6)
        assert _trace_digest(tr_a) == _trace_digest(tr_b)
        assert with_plan.completion_time == without.completion_time
        assert (
            with_plan.telemetry.registry.as_dict()
            == without.telemetry.registry.as_dict()
        )

    def test_fault_free_stats_have_zero_fault_counters(self):
        result, _ = _run(plan=FaultPlan.none(), scale=700, n_proteins=6)
        s = result.server.stats
        assert (s.failed, s.bad_validated, s.sabotage_caught, s.refused_rpcs) \
            == (0, 0, 0, 0)
        assert not any(
            name.startswith("fault.")
            for name in result.telemetry.registry.as_dict()
        )


# -- per-fault-class campaigns ----------------------------------------------


def _assert_terminates(result):
    """A faulty campaign must close every workunit (validated or failed)."""
    s = result.server.stats
    assert result.completion_time is not None
    assert s.effective + s.failed == result.server.n_workunits


class TestCrashFaults:
    def test_crashes_inject_and_campaign_terminates(self):
        scale, n_proteins = CAMPAIGN
        plan = FaultPlan(crashes=CrashFaults(mtbf_active_days=2.0))
        result, tracer = _run(plan=plan, scale=scale, n_proteins=n_proteins)
        _assert_terminates(result)
        assert tracer.counts.get("fault.crash", 0) > 0
        reg = result.telemetry.registry
        assert reg.get("fault.crashes").value == tracer.counts["fault.crash"]

    def test_crashes_cost_wall_clock(self):
        scale, n_proteins = CAMPAIGN
        base, _ = _run(scale=scale, n_proteins=n_proteins)
        crashed, _ = _run(
            plan=FaultPlan(crashes=CrashFaults(mtbf_active_days=1.0)),
            scale=scale, n_proteins=n_proteins,
        )
        _assert_terminates(crashed)
        # Lost un-checkpointed progress must be recomputed: the same
        # workload consumes strictly more accounted device time.
        assert (
            crashed.server.stats.consumed_cpu_s
            > base.server.stats.consumed_cpu_s
        )


class TestCorruptionFaults:
    def test_corrupted_results_rejected_and_reissued(self):
        scale, n_proteins = CAMPAIGN
        plan = FaultPlan(corruption=CorruptionFaults(prob=0.25))
        result, tracer = _run(plan=plan, scale=scale, n_proteins=n_proteins)
        _assert_terminates(result)
        n_corrupt = tracer.counts.get("fault.corrupt", 0)
        assert n_corrupt > 0
        # Every corrupted result is detectable -> counted invalid; the
        # fault-free invalidity draw adds more on top.
        assert result.server.stats.invalid >= n_corrupt
        # None of them validated a workunit.
        assert result.server.stats.bad_validated == 0
        # Rejection forces reissues.
        assert tracer.counts.get("server.reissue", 0) > 0


class TestSabotageFaults:
    def test_saboteurs_caught_by_quorum_but_not_bounds(self):
        # Not smoke-shrunk: the smoke fleet is so small that the few
        # early-joining hosts do every quorum, so saboteur/honest pairs
        # (the thing this test is about) never mix.
        scale, n_proteins = 500, 8
        plan = FaultPlan(sabotage=SabotageFaults(host_fraction=0.3))
        result, tracer = _run(plan=plan, scale=scale, n_proteins=n_proteins)
        _assert_terminates(result)
        s = result.server.stats
        assert tracer.counts.get("fault.sabotage", 0) > 0
        # The two possible fates both occur at a 30% saboteur share over a
        # quorum->bounds campaign: quorum comparison catches some, and the
        # bounds era (no partner to disagree) lets some validate badly.
        assert s.sabotage_caught > 0
        assert s.bad_validated > 0
        assert result.fault_report().bad_validated_fraction > 0.0

    def test_all_saboteurs_quorum_only_never_validates_cleanly(self):
        # Every host sabotages; quorum era for the whole horizon.  Pairs of
        # agreeing-but-wrong results meet the quorum, so validations happen
        # but every one is tainted.
        plan = FaultPlan(sabotage=SabotageFaults(host_fraction=1.0))
        cfg = CampaignConfig(
            faults=plan,
            server=ServerConfig(validation=ValidationPolicy(switch_time=1e12)),
        )
        result = scaled_phase1(
            scale=900, n_proteins=5, config=cfg, horizon_weeks=40.0
        ).run()
        s = result.server.stats
        assert s.effective > 0
        assert s.bad_validated == s.effective


class TestOutageFaults:
    def test_rpcs_refused_and_retried_during_windows(self):
        # Not smoke-shrunk: outage windows are drawn over the 40-week
        # horizon, and the smoke campaign finishes so early that no RPC
        # ever lands inside one.
        scale, n_proteins = 500, 8
        plan = FaultPlan(outages=OutageFaults(n_windows=4, mean_duration_h=36.0))
        result, tracer = _run(plan=plan, scale=scale, n_proteins=n_proteins)
        _assert_terminates(result)
        assert tracer.counts.get("server.refuse", 0) > 0
        assert tracer.counts.get("agent.retry", 0) > 0
        assert result.server.stats.refused_rpcs == tracer.counts["server.refuse"]
        # Windows open and close in pairs.
        begins = [
            e for e in tracer.sink.events
            if e.etype == "fault.outage" and e.fields["phase"] == "begin"
        ]
        ends = [
            e for e in tracer.sink.events
            if e.etype == "fault.outage" and e.fields["phase"] == "end"
        ]
        assert len(begins) == len(ends) > 0
        # No refusal outside a window.
        windows = result.server.config.outages
        for e in tracer.sink.events:
            if e.etype == "server.refuse":
                assert any(s <= e.t_sim < en for s, en in windows)


class TestReportLossFaults:
    def test_lost_reports_retried_until_delivered(self):
        scale, n_proteins = CAMPAIGN
        plan = FaultPlan(report_loss=ReportLossFaults(prob=0.3))
        result, tracer = _run(plan=plan, scale=scale, n_proteins=n_proteins)
        _assert_terminates(result)
        n_lost = tracer.counts.get("fault.report_lost", 0)
        assert n_lost > 0
        assert tracer.counts.get("agent.retry", 0) >= n_lost
        # Loss delays but never destroys results: every loss is eventually
        # followed by a successful report, so the disclosed total is intact.
        base, _ = _run(scale=scale, n_proteins=n_proteins)
        assert result.server.stats.effective == base.server.stats.effective


class TestBoundedReissue:
    def test_budget_exhaustion_fails_workunit_and_campaign_completes(self):
        # Perfectly unreliable hosts: every result invalid, every reissue
        # burns budget; without max_reissues this campaign would never
        # validate anything and run to the horizon.
        plan = FaultPlan(max_reissues=3)
        cfg = CampaignConfig(
            faults=plan,
            host_model=None,
        )
        tracer = Tracer()
        sim = scaled_phase1(
            scale=900, n_proteins=5, config=cfg, tracer=tracer
        )
        sim.host_model = sim.host_model.with_profile(reliability=0.0)
        result = sim.run()
        s = result.server.stats
        assert s.failed > 0
        assert s.effective == 0
        assert result.completion_time is not None  # degraded, not hung
        assert tracer.counts.get("server.workunit_failed", 0) == s.failed
        report = result.fault_report()
        assert report.workunits_failed == s.failed
        assert report.failed_fraction == 1.0

    def test_unit_level_budget(self):
        sim = Simulator()
        config = ServerConfig(
            deadline_s=1e9,
            validation=ValidationPolicy(switch_time=0.0),
            max_reissues=2,
        )
        wu = WorkUnit(wu_id=0, receptor=0, ligand=0, isep_start=1, nsep=5,
                      cost_reference_s=100.0)
        server = GridServer(sim, [(wu, 0)], config=config)
        for _ in range(3):  # reissues 1, 2, then the budget-busting 3rd
            inst = server.request_work(1)
            assert inst is not None
            server.on_result(inst, valid=False, accounted_cpu_s=1.0)
        assert server.stats.failed == 1
        assert server.completion_time is not None
        assert server.request_work(1) is None


# -- server outage unit tests ------------------------------------------------


class TestServerOutageUnit:
    def _server(self, sim, outages):
        config = ServerConfig(
            validation=ValidationPolicy(switch_time=0.0), outages=outages
        )
        wu = WorkUnit(wu_id=0, receptor=0, ligand=0, isep_start=1, nsep=5,
                      cost_reference_s=100.0)
        return GridServer(sim, [(wu, 0)], config=config)

    def test_request_work_refused_inside_window(self):
        sim = Simulator()
        server = self._server(sim, outages=((10.0, 20.0),))
        sim.run(until=15.0)
        with pytest.raises(ServerUnavailable) as exc:
            server.request_work(1)
        assert exc.value.until == 20.0
        assert server.stats.refused_rpcs == 1

    def test_on_result_refused_without_recording(self):
        sim = Simulator()
        server = self._server(sim, outages=((10.0, 20.0),))
        inst = server.request_work(1)
        sim.run(until=15.0)
        with pytest.raises(ServerUnavailable):
            server.on_result(inst, valid=True, accounted_cpu_s=5.0)
        assert server.stats.disclosed == 0
        assert not inst.reported  # the agent may retry the same instance
        sim.run(until=25.0)
        server.on_result(inst, valid=True, accounted_cpu_s=5.0)
        assert server.stats.effective == 1

    def test_rpcs_accepted_again_after_window(self):
        sim = Simulator()
        server = self._server(sim, outages=((10.0, 20.0),))
        sim.run(until=21.0)
        assert server.request_work(1) is not None


# -- sabotage unit tests -----------------------------------------------------


class TestSabotageUnit:
    def _quorum_server(self, sim):
        config = ServerConfig(validation=ValidationPolicy(switch_time=1e12))
        wu = WorkUnit(wu_id=0, receptor=0, ligand=0, isep_start=1, nsep=5,
                      cost_reference_s=100.0)
        return GridServer(sim, [(wu, 0)], config=config)

    def test_quorum_disagreement_catches_saboteur(self):
        sim = Simulator()
        server = self._quorum_server(sim)
        a = server.request_work(1)
        b = server.request_work(2)
        server.on_result(a, valid=True, accounted_cpu_s=1.0,
                         quality=ResultQuality.SABOTAGED)
        assert server.stats.effective == 0  # one bad vote: no quorum
        server.on_result(b, valid=True, accounted_cpu_s=1.0,
                         quality=ResultQuality.OK)
        # 1 OK + 1 SABOTAGED disagree -> stall; a third copy resolves it.
        c = server.request_work(3)
        assert c is not None
        server.on_result(c, valid=True, accounted_cpu_s=1.0,
                         quality=ResultQuality.OK)
        assert server.stats.effective == 1
        assert server.stats.sabotage_caught == 1
        assert server.stats.bad_validated == 0

    def test_agreeing_saboteurs_validate_tainted(self):
        sim = Simulator()
        server = self._quorum_server(sim)
        a = server.request_work(1)
        b = server.request_work(2)
        for inst in (a, b):
            server.on_result(inst, valid=True, accounted_cpu_s=1.0,
                             quality=ResultQuality.SABOTAGED)
        assert server.stats.effective == 1
        assert server.stats.bad_validated == 1
        assert server.stats.sabotage_caught == 0

    def test_bounds_regime_cannot_catch_sabotage(self):
        sim = Simulator()
        config = ServerConfig(validation=ValidationPolicy(switch_time=0.0))
        wu = WorkUnit(wu_id=0, receptor=0, ligand=0, isep_start=1, nsep=5,
                      cost_reference_s=100.0)
        server = GridServer(sim, [(wu, 0)], config=config)
        inst = server.request_work(1)
        server.on_result(inst, valid=True, accounted_cpu_s=1.0,
                         quality=ResultQuality.SABOTAGED)
        assert server.stats.effective == 1
        assert server.stats.bad_validated == 1


# -- result-file corruption vs validation.checks -----------------------------


class TestResultFileCorruption:
    NSEP = 3
    N_COUPLES = 4

    def _write(self, path, drop_lines=0):
        from repro.maxdo.resultfile import (
            ResultHeader,
            format_record,
            write_results,
        )

        header = ResultHeader("P1", "P2", 1, self.NSEP, self.N_COUPLES, 10)
        lines = []
        for p in range(self.NSEP):
            for c in range(self.N_COUPLES):
                lines.append(
                    format_record(
                        1 + p,
                        c + 1,
                        1,
                        np.array([10.0, 0.0, 0.0]),
                        np.array([0.1, 0.2, 0.3]),
                        -3.0,
                        1.5,
                    )
                )
        if drop_lines:
            lines = lines[:-drop_lines]
        write_results(path, header, lines)
        return path

    def test_corrupt_energies_caught_by_value_ranges(self, tmp_path):
        from repro.maxdo.resultfile import read_results
        from repro.validation.checks import ValueRanges

        table = read_results(self._write(tmp_path / "ok.res"))
        assert ValueRanges().violations(table) == []
        rng = np.random.default_rng(0)
        corrupted = corrupt_energies(table, rng, n_lines=1)
        problems = ValueRanges().violations(corrupted)
        assert "energy out of range" in problems
        assert "energy sum mismatch" in problems

    def test_truncated_table_caught_by_line_count(self, tmp_path):
        from repro.maxdo.resultfile import read_results
        from repro.validation.checks import check_result_file

        intact = self._write(tmp_path / "ok.res")
        assert check_result_file(intact).ok
        cut = self._write(tmp_path / "cut.res", drop_lines=5)
        report = check_result_file(cut)
        assert not report.ok
        assert report.files_with_bad_line_count == ["cut.res"]

    def test_truncate_table_helper_drops_lines(self, tmp_path):
        from repro.maxdo.resultfile import expected_line_count, read_results

        table = read_results(self._write(tmp_path / "ok.res"))
        cut = truncate_table(table, keep_fraction=0.5)
        expected = expected_line_count(
            cut.header.nsep, cut.header.n_couples
        )
        assert 0 < len(cut.records) < expected
        assert len(table.records) == expected  # original untouched
