"""Acceptance tests for the per-host behavioral ledger (repro.obs.ledger).

The contract under test (see the module docstring of
:mod:`repro.obs.ledger`):

* **exact reconciliation** — on a faulted adaptive campaign the fleet
  totals agree with :class:`ValidationStats`, the fault report, the
  campaign telemetry and the adaptive-replication streaks, with zero
  orphan events;
* **bit-identity** — a ledger-enabled campaign reproduces the golden
  digests captured before the ledger existed (the ledger observes, it
  never perturbs);
* **offline equivalence** — refolding a recorded trace reproduces the
  live ledger exactly (what ``repro-hcmd hosts`` relies on);
* **sharded determinism** — for a fixed shard plan the merged fleet
  report is identical across worker counts and runs, and ``K=1``
  matches the monolithic ledger;
* the service surface: ``GET /v1/hosts`` and ``GET /v1/metrics``.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro import CampaignConfig, ShardPlan, Tracer, scaled_phase1
from repro.boinc.server import ServerConfig
from repro.boinc.validator import AdaptiveReplication, ValidationPolicy
from repro.faults import FaultPlan
from repro.obs import FleetReport, HostLedger
from repro.obs.tracer import iter_trace
from repro.units import weeks

# Golden values captured at the pre-sharding HEAD (see tests/test_sharding.py
# — same campaign, same channels).  A ledger-enabled run must keep
# reproducing these bytes: the ledger observes the stream, never the sim.
GOLDEN = {
    "completion_time": 6807430.00267922,
    "disclosed": 78,
    "effective": 38,
    "trace_digest":
        "351a01958365616baa218e62417c43d7937c67ab8bd772d470f3f823dab70dd3",
    "registry_digest":
        "07a05502e2add67f3a763cee360d98671d9bc65f3eed318f826d5ef9b9c552c6",
}
LIFECYCLE_CHANNELS = ("server", "agent", "fault")


def _faulted_adaptive_campaign(ledger=True, tracer=None):
    """A seconds-fast campaign exercising every ledger dimension: crashes,
    corruption, sabotage, adaptive trust streaks and spot checks."""
    return scaled_phase1(
        scale=700, n_proteins=6, seed=42,
        config=CampaignConfig(
            faults=FaultPlan.from_spec("crash=3,corrupt=0.05,sabotage=0.02")
        ),
        server_config=ServerConfig(
            validation=ValidationPolicy(switch_time=weeks(10.0)),
            adaptive=AdaptiveReplication(trust_after=3, spot_check_rate=0.1),
        ),
        ledger=ledger,
        tracer=tracer,
    )


class TestReconciliation:
    @pytest.fixture(scope="class")
    def run(self):
        result = _faulted_adaptive_campaign().run()
        assert isinstance(result.ledger, FleetReport)
        return result

    def test_totals_match_validation_stats(self, run):
        totals = run.ledger.totals
        stats = run.server.stats
        assert totals["results"] == stats.disclosed
        assert totals["validated"] == stats.effective
        assert totals["invalid"] == stats.invalid
        assert totals["late"] == stats.late
        assert totals["sabotage_caught"] == stats.sabotage_caught
        assert totals["bad_validated"] == stats.bad_validated
        assert totals["refused"] == stats.refused_rpcs
        assert totals["cpu_s"] == pytest.approx(stats.consumed_cpu_s)

    def test_totals_match_fault_report(self, run):
        totals = run.ledger.totals
        report = run.fault_report()
        assert totals["crashes"] == report.injected["crashes"]
        assert totals["corrupted"] == report.injected["corrupted"]
        assert totals["sabotaged"] == report.injected["sabotaged"]
        assert totals["report_lost"] == report.injected["report_lost"]
        assert totals["sabotage_caught"] == report.sabotage_caught
        assert totals["bad_validated"] == report.bad_validated
        assert totals["invalid"] == report.invalid_rejected

    def test_credit_matches_telemetry(self, run):
        assert run.ledger.totals["credit"] == pytest.approx(
            run.telemetry.total_claimed_credit
        )

    def test_streaks_match_adaptive_replication(self, run):
        adaptive = run.server.config.adaptive
        for host_id, streak in adaptive.streaks().items():
            assert run.ledger.host(host_id)["streak"] == streak

    def test_every_host_accounted(self, run):
        """Zero orphans: every host that appears in the event stream has
        a classified record, and the class histogram covers them all.
        (Hosts the scheduler never touched have nothing to ledger.)"""
        assert 1 <= run.ledger.n_hosts <= run.n_hosts
        assert len(run.ledger.hosts) == run.ledger.n_hosts
        assert sum(run.ledger.classes.values()) == run.ledger.n_hosts
        assert run.ledger.n_observed > 0
        for doc in run.ledger.hosts:
            assert doc["class"] in ("suspect-saboteur", "flaky", "straggler",
                                    "reliable")

    def test_rides_into_metrics_json(self, run, tmp_path):
        run.export(tmp_path)
        doc = json.loads((tmp_path / "metrics.json").read_text())
        assert doc["ledger"]["totals"]["results"] == run.server.stats.disclosed


class TestBitIdentity:
    def test_ledger_on_reproduces_golden_digests(self, tmp_path):
        """The pre-ledger golden campaign, byte for byte, with the ledger
        folding alongside."""
        tracer = Tracer.to_jsonl(
            tmp_path / "trace.jsonl", channels=LIFECYCLE_CHANNELS
        )
        result = scaled_phase1(
            scale=700, n_proteins=6, seed=42,
            config=CampaignConfig(), tracer=tracer, ledger=True,
        ).run()
        tracer.close()

        assert result.completion_time == GOLDEN["completion_time"]
        assert result.server.stats.disclosed == GOLDEN["disclosed"]
        assert result.server.stats.effective == GOLDEN["effective"]
        digest = hashlib.sha256()
        for e in iter_trace(tmp_path / "trace.jsonl"):
            digest.update(
                repr((e.etype, e.t_sim, tuple(sorted(e.fields.items())))).encode()
            )
        assert digest.hexdigest() == GOLDEN["trace_digest"]
        registry = json.dumps(result.telemetry.registry.as_dict(), sort_keys=True)
        assert (
            hashlib.sha256(registry.encode()).hexdigest()
            == GOLDEN["registry_digest"]
        )
        assert result.ledger is not None
        assert result.ledger.totals["results"] == GOLDEN["disclosed"]


class TestOfflineEquivalence:
    def test_refolding_a_trace_reproduces_the_live_ledger(self, tmp_path):
        """The ``repro-hcmd hosts`` contract: a trace recorded with the
        lifecycle + ``host`` channels refolds into the exact fleet report
        the live campaign produced."""
        tracer = Tracer.to_jsonl(
            tmp_path / "trace.jsonl", channels=LIFECYCLE_CHANNELS + ("host",)
        )
        result = _faulted_adaptive_campaign(tracer=tracer).run()
        tracer.close()

        refolded = HostLedger()
        for event in iter_trace(tmp_path / "trace.jsonl"):
            refolded.observe(event)
        fleet = refolded.finalize(result.ledger.t_end)
        assert fleet.as_dict() == result.ledger.as_dict()


class TestShardedFleetReport:
    def _run(self, n_shards, n_workers):
        config = CampaignConfig().with_(
            shards=ShardPlan(n_shards=n_shards, n_workers=n_workers)
        )
        return scaled_phase1(
            scale=700, n_proteins=6, seed=42, config=config, ledger=True
        ).run()

    def test_merged_report_identical_across_worker_counts(self):
        sequential = self._run(4, 1)
        pooled = self._run(4, 2)
        assert sequential.ledger is not None
        assert sequential.ledger.as_dict() == pooled.ledger.as_dict()

    def test_merged_report_identical_across_runs(self):
        assert self._run(4, 2).ledger.as_dict() == self._run(4, 2).ledger.as_dict()

    def test_single_shard_matches_monolithic(self):
        sharded = self._run(1, 1)
        monolithic = scaled_phase1(
            scale=700, n_proteins=6, seed=42,
            config=CampaignConfig(), ledger=True,
        ).run()
        assert sharded.ledger.as_dict() == monolithic.ledger.as_dict()


class TestServiceEndpoints:
    def test_hosts_and_metrics_endpoints(self):
        from repro.service import SchedulerClient, serve_in_thread

        handle = serve_in_thread(
            scaled_phase1(scale=900, n_proteins=5, seed=11, horizon_weeks=30.0)
        )
        client = SchedulerClient(*handle.address)
        try:
            work = client.request_work(host=0, t=3600.0)
            assignment = work["assignment"]
            client.report_result(
                assignment["token"], valid=True,
                accounted_cpu_s=assignment["cost_reference_s"], t=7200.0,
            )

            fleet = client.hosts()
            assert fleet["n_hosts"] >= 1
            assert fleet["now_s"] >= 7200.0
            assert fleet["totals"]["results"] == 1
            host0 = next(doc for doc in fleet["hosts"] if doc["host"] == 0)
            assert host0["validated"] + host0["results"] >= 1

            text = client.metrics_text()
            assert "# TYPE" in text
            assert "service_rpc_wall_s_request_work" in text
            assert 'quantile="0.5"' in text
            # The forensics endpoints measure themselves too.
            assert client.hosts()  # second call after /v1/metrics was hit
            assert "service_rpc_wall_s_metrics" in client.metrics_text()
        finally:
            client.close()
            handle.stop()


class TestHostsCli:
    @pytest.fixture(scope="class")
    def trace_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("ledger") / "trace.jsonl"
        tracer = Tracer.to_jsonl(path, channels=LIFECYCLE_CHANNELS + ("host",))
        _faulted_adaptive_campaign(ledger=False, tracer=tracer).run()
        tracer.close()
        return path

    def test_fleet_table(self, trace_path, capsys):
        from repro.cli import main

        assert main(["hosts", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "fleet:" in out
        assert "host class" in out

    def test_host_detail_with_timeline(self, trace_path, capsys):
        from repro.cli import main

        assert main(["hosts", str(trace_path), "--host", "0", "--limit", "5"]) == 0
        out = capsys.readouterr().out
        assert "host 0" in out
        assert "trust streak" in out
        assert "host=0" in out  # the timeline tail

    def test_json_format_round_trips(self, trace_path, capsys):
        from repro.cli import main

        assert main(["hosts", str(trace_path), "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["n_hosts"] == len(doc["hosts"])

    def test_markdown_format(self, trace_path, capsys):
        from repro.cli import main

        assert main(["hosts", str(trace_path), "--format", "md"]) == 0
        out = capsys.readouterr().out
        assert "## Fleet forensics" in out
        assert "| host |" in out

    def test_missing_file_fails_cleanly(self, capsys):
        from repro.cli import main

        assert main(["hosts", "/nonexistent/trace.jsonl"]) == 2
        assert "trace" in capsys.readouterr().err.lower()
