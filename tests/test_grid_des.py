"""Tests for repro.grid.des: the discrete-event kernel."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid.des import Simulator


class TestScheduling:
    def test_fifo_order_at_equal_times(self):
        sim = Simulator()
        order = []
        for name in "abc":
            sim.schedule(1.0, order.append, name)
        sim.run()
        assert order == ["a", "b", "c"]

    def test_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, order.append, "late")
        sim.schedule(1.0, order.append, "early")
        sim.run()
        assert order == ["early", "late"]

    def test_clock_advances(self):
        sim = Simulator()
        times = []
        sim.schedule(2.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [2.5]

    def test_nested_scheduling(self):
        sim = Simulator()
        seen = []

        def first():
            seen.append(sim.now)
            sim.schedule(1.0, second)

        def second():
            seen.append(sim.now)

        sim.schedule(1.0, first)
        sim.run()
        assert seen == [1.0, 2.0]

    def test_rejects_past(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(1.0, lambda: None)

    def test_events_processed_counter(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 5


class TestCancellation:
    def test_cancelled_event_skipped(self):
        sim = Simulator()
        fired = []
        ev = sim.schedule(1.0, fired.append, "x")
        ev.cancel()
        sim.run()
        assert fired == []

    def test_cancel_one_of_many(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "keep")
        ev = sim.schedule(1.0, fired.append, "drop")
        ev.cancel()
        sim.run()
        assert fired == ["keep"]

    def test_peek_skips_cancelled(self):
        sim = Simulator()
        ev = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        ev.cancel()
        assert sim.peek() == 2.0


class TestRunUntil:
    def test_stops_at_horizon(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "in")
        sim.schedule(10.0, fired.append, "out")
        sim.run(until=5.0)
        assert fired == ["in"]
        assert sim.now == 5.0

    def test_inclusive_boundary(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, fired.append, "edge")
        sim.run(until=5.0)
        assert fired == ["edge"]

    def test_clock_set_even_when_drained(self):
        sim = Simulator()
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_rejects_past_horizon(self):
        sim = Simulator()
        sim.schedule(3.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.run(until=1.0)

    def test_resume_after_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(10.0, fired.append, "late")
        sim.run(until=5.0)
        sim.run()
        assert fired == ["late"]


class TestClockMonotonicity:
    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=50))
    def test_callbacks_see_monotone_time(self, delays):
        sim = Simulator()
        seen = []
        for d in delays:
            sim.schedule(d, lambda: seen.append(sim.now))
        sim.run()
        assert seen == sorted(seen)
        assert len(seen) == len(delays)
