"""Tests for repro.grid.des: the discrete-event kernel.

``repro.grid._reference_des`` holds the original (slow) kernel verbatim;
the property tests at the bottom drive both kernels through identical
random op interleavings and require identical trajectories — that is the
fast path's correctness oracle.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid import _reference_des
from repro.grid.des import Simulator


class TestScheduling:
    def test_fifo_order_at_equal_times(self):
        sim = Simulator()
        order = []
        for name in "abc":
            sim.schedule(1.0, order.append, name)
        sim.run()
        assert order == ["a", "b", "c"]

    def test_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, order.append, "late")
        sim.schedule(1.0, order.append, "early")
        sim.run()
        assert order == ["early", "late"]

    def test_clock_advances(self):
        sim = Simulator()
        times = []
        sim.schedule(2.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [2.5]

    def test_nested_scheduling(self):
        sim = Simulator()
        seen = []

        def first():
            seen.append(sim.now)
            sim.schedule(1.0, second)

        def second():
            seen.append(sim.now)

        sim.schedule(1.0, first)
        sim.run()
        assert seen == [1.0, 2.0]

    def test_rejects_past(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(1.0, lambda: None)

    def test_events_processed_counter(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 5


class TestCancellation:
    def test_cancelled_event_skipped(self):
        sim = Simulator()
        fired = []
        ev = sim.schedule(1.0, fired.append, "x")
        ev.cancel()
        sim.run()
        assert fired == []

    def test_cancel_one_of_many(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "keep")
        ev = sim.schedule(1.0, fired.append, "drop")
        ev.cancel()
        sim.run()
        assert fired == ["keep"]

    def test_peek_skips_cancelled(self):
        sim = Simulator()
        ev = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        ev.cancel()
        assert sim.peek() == 2.0


class TestRunUntil:
    def test_stops_at_horizon(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "in")
        sim.schedule(10.0, fired.append, "out")
        sim.run(until=5.0)
        assert fired == ["in"]
        assert sim.now == 5.0

    def test_inclusive_boundary(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, fired.append, "edge")
        sim.run(until=5.0)
        assert fired == ["edge"]

    def test_clock_set_even_when_drained(self):
        sim = Simulator()
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_rejects_past_horizon(self):
        sim = Simulator()
        sim.schedule(3.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.run(until=1.0)

    def test_resume_after_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(10.0, fired.append, "late")
        sim.run(until=5.0)
        sim.run()
        assert fired == ["late"]


class TestClockMonotonicity:
    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=50))
    def test_callbacks_see_monotone_time(self, delays):
        sim = Simulator()
        seen = []
        for d in delays:
            sim.schedule(d, lambda: seen.append(sim.now))
        sim.run()
        assert seen == sorted(seen)
        assert len(seen) == len(delays)


class TestTimerLanes:
    """schedule_timer: semantically schedule(), stored in a FIFO lane."""

    def test_timer_fires_like_schedule(self):
        sim = Simulator()
        fired = []
        sim.schedule_timer(2.0, fired.append, "timer")
        sim.schedule(1.0, fired.append, "heap")
        sim.run()
        assert fired == ["heap", "timer"]

    def test_cancelled_timer_skipped(self):
        sim = Simulator()
        fired = []
        ev = sim.schedule_timer(1.0, fired.append, "x")
        sim.schedule(2.0, fired.append, "keep")
        ev.cancel()
        sim.run()
        assert fired == ["keep"]

    def test_equal_time_ties_break_on_scheduling_order(self):
        # A heap event, a timer, and another heap event all at t=5 must
        # fire in scheduling order — the lane merge must respect seq.
        sim = Simulator()
        fired = []
        sim.schedule(5.0, fired.append, "a")
        sim.schedule_timer(5.0, fired.append, "b")
        sim.schedule(5.0, fired.append, "c")
        sim.schedule_timer(5.0, fired.append, "d")
        sim.run()
        assert fired == ["a", "b", "c", "d"]

    def test_multiple_lanes_merge_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule_timer(10.0, fired.append, "slow")
        sim.schedule_timer(1.0, fired.append, "fast")
        sim.schedule_timer(5.0, fired.append, "mid")
        sim.run()
        assert fired == ["fast", "mid", "slow"]

    def test_timer_rescheduled_from_callback(self):
        # Lanes stay FIFO even when refilled mid-run from callbacks.
        sim = Simulator()
        times = []

        def tick():
            times.append(sim.now)
            if len(times) < 4:
                sim.schedule_timer(3.0, tick)

        sim.schedule_timer(3.0, tick)
        sim.run()
        assert times == [3.0, 6.0, 9.0, 12.0]

    def test_timer_rejects_negative_delay(self):
        with pytest.raises(ValueError):
            Simulator().schedule_timer(-1.0, lambda: None)

    def test_peek_sees_timers(self):
        sim = Simulator()
        sim.schedule(7.0, lambda: None)
        sim.schedule_timer(3.0, lambda: None)
        assert sim.peek() == 3.0

    def test_run_until_holds_pending_timers(self):
        sim = Simulator()
        fired = []
        sim.schedule_timer(10.0, fired.append, "late")
        sim.run(until=5.0)
        assert fired == []
        sim.run()
        assert fired == ["late"]


class TestBatchSchedule:
    """schedule_batch_at: bulk load equivalent to a schedule_at loop."""

    def test_sorted_batch_fires_in_order(self):
        sim = Simulator()
        fired = []
        sim.schedule_batch_at(
            (float(t), lambda t=t: fired.append(t)) for t in range(5)
        )
        sim.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_unsorted_batch_fires_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule_batch_at(
            [(3.0, lambda: fired.append("c")),
             (1.0, lambda: fired.append("a")),
             (2.0, lambda: fired.append("b"))]
        )
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_batch_on_nonempty_queue(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.5, fired.append, "heap")
        sim.schedule_batch_at([(1.0, lambda: fired.append("b0")),
                               (2.0, lambda: fired.append("b1"))])
        sim.run()
        assert fired == ["b0", "heap", "b1"]

    def test_batch_handles_are_cancellable(self):
        sim = Simulator()
        fired = []
        events = sim.schedule_batch_at(
            [(1.0, lambda: fired.append("a")), (2.0, lambda: fired.append("b"))]
        )
        events[0].cancel()
        sim.run()
        assert fired == ["b"]

    def test_batch_rejects_past(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_batch_at([(1.0, lambda: None)])

    def test_equal_times_fire_in_batch_order(self):
        sim = Simulator()
        fired = []
        sim.schedule_batch_at(
            [(1.0, lambda k=k: fired.append(k)) for k in range(4)]
        )
        sim.run()
        assert fired == [0, 1, 2, 3]


# -- fast kernel vs reference kernel equivalence --------------------------

#: Small delay pools force time collisions so the (time, seq) tie-break
#: is exercised constantly.
_DELAYS = [0.0, 0.5, 1.0, 1.0, 2.5, 7.0]
_TIMER_DELAYS = [5.0, 5.0, 12.0]

_op = st.tuples(
    st.integers(min_value=0, max_value=5),   # op kind
    st.integers(min_value=0, max_value=23),  # operand a
    st.integers(min_value=0, max_value=23),  # operand b
)


def _drive(sim_cls, ops):
    """Replay an encoded op sequence on a kernel; return its trajectory.

    Ops: 0=schedule, 1=schedule_timer, 2=cancel an earlier handle,
    3=step, 4=run(until=now+dt), 5=schedule_batch_at.  Every third
    scheduled callback schedules a child event, so firing order feeds
    back into queue contents.
    """
    sim = sim_cls()
    log = []
    handles = []
    tag = 0

    def fire(t):
        log.append((t, sim.now))
        if t % 3 == 0:
            handles.append(sim.schedule(_DELAYS[t % len(_DELAYS)], fire, -t - 1))

    for kind, a, b in ops:
        if kind == 0:
            handles.append(sim.schedule(_DELAYS[a % len(_DELAYS)], fire, tag))
            tag += 1
        elif kind == 1:
            handles.append(
                sim.schedule_timer(_TIMER_DELAYS[a % len(_TIMER_DELAYS)], fire, tag)
            )
            tag += 1
        elif kind == 2:
            if handles:
                handles[a % len(handles)].cancel()
        elif kind == 3:
            sim.step()
        elif kind == 4:
            sim.run(until=sim.now + _DELAYS[a % len(_DELAYS)])
        else:
            times = sorted(
                sim.now + _DELAYS[(a + k) % len(_DELAYS)] for k in range(b % 4)
            )
            batch = [(t, lambda tag=tag + k: fire(tag)) for k, t in enumerate(times)]
            handles.extend(sim.schedule_batch_at(batch))
            tag += len(batch)
    sim.run()
    return log, sim.now, sim.events_processed


class TestReferenceEquivalence:
    """The fast kernel's trajectory must match the frozen reference kernel
    for arbitrary interleavings of every scheduling primitive."""

    @settings(max_examples=150, deadline=None)
    @given(st.lists(_op, min_size=1, max_size=40))
    def test_same_trajectory_as_reference(self, ops):
        assert _drive(Simulator, ops) == _drive(_reference_des.Simulator, ops)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(_op, min_size=1, max_size=40))
    def test_fast_kernel_is_deterministic(self, ops):
        assert _drive(Simulator, ops) == _drive(Simulator, ops)
