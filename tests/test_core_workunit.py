"""Tests for repro.core.workunit."""

from __future__ import annotations

import pytest

from repro import constants as C
from repro.core.workunit import WorkUnit, WorkUnitStatus, workunit_input_bytes


def _wu(**kw):
    defaults = dict(
        wu_id=0, receptor=1, ligand=2, isep_start=1, nsep=10, cost_reference_s=3600.0
    )
    defaults.update(kw)
    return WorkUnit(**defaults)


class TestWorkUnit:
    def test_isep_end(self):
        assert _wu(isep_start=5, nsep=10).isep_end == 14

    def test_couple(self):
        assert _wu().couple == (1, 2)

    def test_single_position(self):
        wu = _wu(isep_start=7, nsep=1)
        assert wu.isep_end == 7

    def test_rejects_zero_based_isep(self):
        with pytest.raises(ValueError):
            _wu(isep_start=0)

    def test_rejects_empty_slice(self):
        with pytest.raises(ValueError):
            _wu(nsep=0)

    def test_rejects_nonpositive_cost(self):
        with pytest.raises(ValueError):
            _wu(cost_reference_s=0.0)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            _wu().nsep = 5


class TestStatus:
    def test_lifecycle_values(self):
        assert WorkUnitStatus.UNRELEASED.value == "unreleased"
        assert len(WorkUnitStatus) == 4


class TestInputBytes:
    def test_small_couple_fits(self):
        assert workunit_input_bytes(200, 150) < C.MAX_WORKUNIT_INPUT_BYTES

    def test_large_couple_still_fits(self):
        # Even the biggest synthetic proteins respect the 2 MB grid limit.
        assert workunit_input_bytes(3000, 3000) < C.MAX_WORKUNIT_INPUT_BYTES

    def test_grows_with_size(self):
        assert workunit_input_bytes(500, 500) > workunit_input_bytes(50, 50)

    def test_oversized_rejected(self):
        with pytest.raises(ValueError):
            workunit_input_bytes(10_000, 10_000)
