"""The shared ``--campaign SPEC`` mini-language (repro.multi.spec).

One grammar across the CLI subcommands: ``key=value`` pairs selecting a
workload kind and campaign knobs.  Errors must be user-facing — the CLI
prints them verbatim — so the tests pin both the parses and the message
contracts (offending key named, valid vocabulary listed).
"""

from __future__ import annotations

import pytest

from repro.multi.spec import (
    SPEC_KEYS,
    CampaignSpecError,
    parse_campaign_spec,
)
from repro.multi.workloads import CrossDockingWorkload, ScreeningWorkload


class TestParsing:
    def test_cross_docking_full_spec(self):
        c = parse_campaign_spec(
            "name=hcmd,kind=cross-docking,scale=300,proteins=10,"
            "target-hours=2.5,release=library,weight=3,priority=1,"
            "quota=0.5,submit=1,drain=20"
        )
        assert c.name == "hcmd"
        assert isinstance(c.workload, CrossDockingWorkload)
        assert c.workload.scale == 300.0
        assert c.workload.n_proteins == 10
        assert c.workload.target_hours == 2.5
        assert c.workload.release_policy == "library"
        assert c.weight == 3.0
        assert c.priority == 1
        assert c.quota_fraction == 0.5
        assert c.submit_week == 1.0
        assert c.drain_week == 20.0

    def test_screening_spec(self):
        c = parse_campaign_spec(
            "kind=screening,ligands=500,mean-hours=2,sigma=0.4,batch=25"
        )
        assert isinstance(c.workload, ScreeningWorkload)
        assert c.workload.n_ligands == 500
        assert c.workload.mean_hours == 2.0
        assert c.workload.sigma == 0.4
        assert c.workload.batch_size == 25

    def test_kind_defaults_to_cross_docking(self):
        c = parse_campaign_spec("scale=500")
        assert isinstance(c.workload, CrossDockingWorkload)
        assert c.name == "hcmd"

    def test_name_defaults_to_the_kind(self):
        assert parse_campaign_spec("kind=screening,ligands=9").name == (
            "screening"
        )

    def test_whitespace_and_empty_items_tolerated(self):
        c = parse_campaign_spec(" scale = 500 ,, proteins = 6 ")
        assert c.workload.scale == 500.0
        assert c.workload.n_proteins == 6


class TestErrors:
    def _message(self, spec: str) -> str:
        with pytest.raises(CampaignSpecError) as err:
            parse_campaign_spec(spec)
        return str(err.value)

    def test_unknown_key_names_it_and_lists_the_vocabulary(self):
        message = self._message("kind=screening,bogus=3")
        assert "'bogus'" in message
        for key in SPEC_KEYS:
            assert key in message

    def test_missing_value(self):
        assert "key=value" in self._message("scale=")

    def test_missing_equals(self):
        assert "key=value" in self._message("scale")

    def test_duplicate_key(self):
        assert "duplicate" in self._message("scale=1,scale=2")

    def test_empty_spec(self):
        assert "empty" in self._message("  , ,")

    def test_unknown_kind(self):
        message = self._message("kind=folding")
        assert "'folding'" in message

    def test_key_for_the_wrong_kind(self):
        message = self._message("kind=screening,proteins=5")
        assert "'proteins'" in message
        assert "cross-docking" in message

    def test_bad_value_type_names_key_and_value(self):
        message = self._message("proteins=many")
        assert "'proteins'" in message and "'many'" in message
        assert "int" in message

    def test_campaign_validation_becomes_a_spec_error(self):
        assert "weight" in self._message("scale=500,weight=-1")

    def test_spec_error_is_a_value_error(self):
        with pytest.raises(ValueError):
            parse_campaign_spec("nope=1")
