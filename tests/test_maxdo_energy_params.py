"""Tests for EnergyParams: the tunable interaction-energy variants."""

from __future__ import annotations

import numpy as np
import pytest

from repro.maxdo.energy import (
    EnergyParams,
    energy_and_bead_gradient,
    interaction_energy,
)


def _pose(receptor, ligand, extra=4.0):
    return np.eye(3), np.array(
        [receptor.bounding_radius + ligand.bounding_radius + extra, 0.0, 0.0]
    )


class TestEnergyParams:
    def test_defaults_match_module_constants(self, tiny_receptor, tiny_ligand):
        rot, t = _pose(tiny_receptor, tiny_ligand)
        default = interaction_energy(tiny_receptor, tiny_ligand, rot, t)
        explicit = interaction_energy(
            tiny_receptor, tiny_ligand, rot, t, params=EnergyParams()
        )
        assert default == explicit

    def test_dielectric_scales_electrostatics(self, tiny_receptor, tiny_ligand):
        rot, t = _pose(tiny_receptor, tiny_ligand)
        base = interaction_energy(
            tiny_receptor, tiny_ligand, rot, t, params=EnergyParams(dielectric=15.0)
        )
        doubled = interaction_energy(
            tiny_receptor, tiny_ligand, rot, t, params=EnergyParams(dielectric=30.0)
        )
        assert doubled[1] == pytest.approx(base[1] / 2.0)
        assert doubled[0] == pytest.approx(base[0])  # LJ untouched

    def test_lj_scale(self, tiny_receptor, tiny_ligand):
        rot, t = _pose(tiny_receptor, tiny_ligand)
        base = interaction_energy(tiny_receptor, tiny_ligand, rot, t)
        scaled = interaction_energy(
            tiny_receptor, tiny_ligand, rot, t, params=EnergyParams(lj_scale=0.5)
        )
        assert scaled[0] == pytest.approx(0.5 * base[0])
        assert scaled[1] == pytest.approx(base[1])

    def test_stronger_screening_reduces_range(self, tiny_receptor, tiny_ligand):
        rot, t = _pose(tiny_receptor, tiny_ligand, extra=10.0)
        weak = interaction_energy(
            tiny_receptor, tiny_ligand, rot, t,
            params=EnergyParams(debye_length_a=20.0),
        )
        strong = interaction_energy(
            tiny_receptor, tiny_ligand, rot, t,
            params=EnergyParams(debye_length_a=2.0),
        )
        assert abs(strong[1]) < abs(weak[1])

    def test_softening_caps_overlap_energy(self, tiny_receptor, tiny_ligand):
        rot = np.eye(3)
        t = np.zeros(3)  # full overlap
        hard = interaction_energy(
            tiny_receptor, tiny_ligand, rot, t, params=EnergyParams(softening_a=0.5)
        )
        soft = interaction_energy(
            tiny_receptor, tiny_ligand, rot, t, params=EnergyParams(softening_a=3.0)
        )
        assert soft[0] < hard[0]

    def test_gradient_consistent_with_params(self, tiny_receptor, tiny_ligand):
        params = EnergyParams(dielectric=25.0, debye_length_a=5.0, lj_scale=0.8)
        rot, t = _pose(tiny_receptor, tiny_ligand)
        coords = tiny_ligand.transformed(rot, t)
        energy, grad = energy_and_bead_gradient(
            tiny_receptor, tiny_ligand, coords, params=params
        )
        lj, el = interaction_energy(tiny_receptor, tiny_ligand, rot, t, params=params)
        assert energy == pytest.approx(lj + el, rel=1e-12)
        # Spot-check the gradient against finite differences.
        h = 1e-6
        j = 3
        plus = coords.copy()
        plus[j, 0] += h
        minus = coords.copy()
        minus[j, 0] -= h
        ep, _ = energy_and_bead_gradient(tiny_receptor, tiny_ligand, plus, params=params)
        em, _ = energy_and_bead_gradient(tiny_receptor, tiny_ligand, minus, params=params)
        assert grad[j, 0] == pytest.approx((ep - em) / (2 * h), rel=1e-4, abs=1e-8)

    def test_validation(self):
        with pytest.raises(ValueError):
            EnergyParams(dielectric=0.0)
        with pytest.raises(ValueError):
            EnergyParams(debye_length_a=-1.0)
        with pytest.raises(ValueError):
            EnergyParams(lj_scale=-0.1)
