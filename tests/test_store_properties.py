"""Property-based tests of the columnar store's lossless-conversion pledge.

For arbitrary text-representable result tables — including range-edge
energies near the check thresholds and maximal ``isep`` slices at the
widest the ``%7d`` column ever prints — both conversion directions must
be byte-identical round trips:

* text -> columnar -> text reproduces the file byte for byte;
* columnar -> text -> columnar reproduces the packed columns bit for bit.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.maxdo.resultfile import RESULT_DTYPE, ResultHeader, write_results
from repro.store import (
    ColumnarSegment,
    render_lines,
    segment_from_text,
    segment_to_text,
)

pytestmark = pytest.mark.store

#: maximal isep slice the %7d column prints without widening
MAX_ISEP = 9_999_999


def _quantized(lo, hi, decimals):
    """Floats that survive the fixed-point text formats exactly."""
    scale = 10**decimals
    return st.integers(
        min_value=int(lo * scale), max_value=int(hi * scale)
    ).map(lambda k: k / scale)


@st.composite
def result_tables(draw):
    """A small arbitrary result table plus a consistent header.

    Values stay within what the fixed text formats represent exactly, but
    deliberately reach the range edges: coordinates to ±499.999, energies
    to ±99_999.9999 (both sides of the 1e6 check threshold's printable
    range), and isep slices ending at ``MAX_ISEP``.
    """
    nsep = draw(st.integers(min_value=1, max_value=4))
    n_rot = draw(st.integers(min_value=1, max_value=5))
    n_gamma = draw(st.integers(min_value=1, max_value=12))
    isep_start = draw(
        st.one_of(
            st.integers(min_value=1, max_value=50),
            st.just(MAX_ISEP - nsep + 1),
        )
    )
    n = nsep * n_rot
    rec = np.zeros(n, dtype=RESULT_DTYPE)
    rec["isep"] = np.repeat(np.arange(isep_start, isep_start + nsep), n_rot)
    rec["irot"] = np.tile(np.arange(1, n_rot + 1), nsep)
    rec["igamma"] = draw(
        st.lists(
            st.integers(min_value=1, max_value=n_gamma),
            min_size=n, max_size=n,
        )
    )
    coord = _quantized(-499.999, 499.999, 3)
    angle = _quantized(-9.9999, 9.9999, 4)
    energy = _quantized(-99_999.9999, 99_999.9999, 4)
    for field, strat in (
        ("x", coord), ("y", coord), ("z", coord),
        ("alpha", angle), ("beta", angle), ("gamma", angle),
        ("e_lj", energy), ("e_elec", energy),
    ):
        rec[field] = draw(st.lists(strat, min_size=n, max_size=n))
    # e_tot is the formatted sum, kept representable (|sum| < 1e5 always
    # holds at these bounds only up to rounding; clip via the same round
    # the producer applies).
    rec["e_tot"] = np.round(rec["e_lj"] + rec["e_elec"], 4)
    header = ResultHeader(
        receptor="RCPT", ligand="LGND", isep_start=isep_start,
        nsep=nsep, n_couples=n_rot, n_gamma=n_gamma,
    )
    return header, rec


class TestRoundTripProperties:
    @settings(
        max_examples=25,
        deadline=None,
        # tmp_path reuse across examples is safe: every example overwrites
        # its files before reading them back
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(table=result_tables())
    def test_text_to_columnar_to_text_byte_identical(self, table, tmp_path):
        header, rec = table
        src = tmp_path / "src.result"
        write_results(src, header, render_lines(rec))
        out = tmp_path / "back.result"
        segment_to_text(segment_from_text(src), out)
        assert out.read_bytes() == src.read_bytes()

    @settings(
        max_examples=25,
        deadline=None,
        # tmp_path reuse across examples is safe: every example overwrites
        # its files before reading them back
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(table=result_tables())
    def test_columnar_to_text_to_columnar_bit_identical(self, table, tmp_path):
        header, rec = table
        seg = ColumnarSegment.from_records(header, rec)
        mid = tmp_path / "mid.result"
        segment_to_text(seg, mid)
        back = segment_from_text(mid)
        assert back.header == seg.header
        assert back.packed.tobytes() == seg.packed.tobytes()

    @settings(
        max_examples=25,
        deadline=None,
        # tmp_path reuse across examples is safe: every example overwrites
        # its files before reading them back
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(table=result_tables())
    def test_unpacked_records_match_source_bitwise(self, table, tmp_path):
        header, rec = table
        seg = ColumnarSegment.from_records(header, rec)
        for name in RESULT_DTYPE.names:
            assert np.array_equal(seg.records[name], rec[name]), name
