"""Tests for repro.dedicated: cluster model and campaign runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.packaging import PackagingPolicy, WorkUnitPlan
from repro.dedicated import Cluster, DedicatedGridSimulation
from repro.units import SECONDS_PER_DAY


class TestCluster:
    def test_single_processor_serializes(self):
        c = Cluster(1)
        finish = c.schedule_tasks(np.array([10.0, 20.0, 5.0]))
        assert finish.tolist() == [10.0, 30.0, 35.0]

    def test_two_processors_parallelize(self):
        c = Cluster(2)
        finish = c.schedule_tasks(np.array([10.0, 10.0]))
        assert finish.tolist() == [10.0, 10.0]
        assert c.makespan == 10.0

    def test_list_scheduling_earliest_free(self):
        c = Cluster(2)
        c.schedule_tasks(np.array([10.0, 2.0, 2.0]))
        # Third task lands on the processor free at t=2.
        assert c.makespan == 10.0

    def test_speed_scales_durations(self):
        c = Cluster(1, speed=2.0)
        finish = c.schedule_tasks(np.array([10.0]))
        assert finish[0] == 5.0

    def test_busy_seconds(self):
        c = Cluster(2)
        c.schedule_tasks(np.array([10.0, 4.0]))
        assert c.busy_seconds == 14.0

    def test_utilization(self):
        c = Cluster(2)
        c.schedule_tasks(np.array([10.0, 10.0]))
        assert c.utilization() == pytest.approx(1.0)

    def test_reset(self):
        c = Cluster(2)
        c.schedule_tasks(np.array([10.0]))
        c.reset()
        assert c.makespan == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Cluster(0)
        with pytest.raises(ValueError):
            Cluster(1, speed=0.0)
        with pytest.raises(ValueError):
            Cluster(1).schedule_tasks(np.array([-1.0]))

    def test_graham_bound(self):
        # List scheduling stays within 2x the trivial lower bound.
        rng = np.random.default_rng(0)
        costs = rng.exponential(100.0, size=500)
        c = Cluster(16)
        c.schedule_tasks(costs)
        lower = max(costs.sum() / 16, costs.max())
        assert c.makespan <= 2.0 * lower


class TestCalibrationRun:
    def test_phase1_calibration_fits_one_day(self, phase1_cost_model):
        grid = DedicatedGridSimulation.grid5000_calibration_setup()
        result = grid.run_calibration(phase1_cost_model)
        # Paper: ~73 cpu-days, 640 processors, one-day reservation.
        assert result.cpu_days == pytest.approx(73.0, rel=0.20)
        assert result.makespan_days < 1.0
        assert result.n_processors == 640
        assert result.n_tasks == 168 * 168

    def test_effective_processors_bounded_by_size(self, small_cost_model):
        grid = DedicatedGridSimulation(n_processors=8)
        result = grid.run_calibration(small_cost_model, samples_per_couple=3)
        assert result.effective_processors <= 8.0


class TestWorkunitRun:
    def test_conservation(self, small_cost_model):
        plan = WorkUnitPlan(small_cost_model, PackagingPolicy(5))
        grid = DedicatedGridSimulation(n_processors=32)
        result = grid.run_workunits(plan)
        assert result.cpu_seconds == pytest.approx(
            small_cost_model.total_reference_cpu(), rel=1e-9
        )

    def test_dedicated_effective_equals_useful_rate(self, small_cost_model):
        # No redundancy, no throttle: effective processors ~ cluster size
        # when utilization is high — the Table 2 contrast.
        plan = WorkUnitPlan(small_cost_model, PackagingPolicy(5))
        grid = DedicatedGridSimulation(n_processors=16)
        result = grid.run_workunits(plan, lpt=True)
        assert result.effective_processors > 0.85 * 16

    def test_prefix_limit(self, small_cost_model):
        plan = WorkUnitPlan(small_cost_model, PackagingPolicy(5))
        grid = DedicatedGridSimulation(n_processors=4)
        result = grid.run_workunits(plan, max_workunits=10)
        assert result.n_tasks == 10

    def test_more_processors_shorter_makespan(self, small_cost_model):
        plan = WorkUnitPlan(small_cost_model, PackagingPolicy(5))
        small = DedicatedGridSimulation(n_processors=4).run_workunits(plan)
        large = DedicatedGridSimulation(n_processors=64).run_workunits(plan)
        assert large.makespan_s < small.makespan_s
