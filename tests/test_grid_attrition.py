"""Tests for volunteer attrition (hosts leaving the project for good)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.boinc.simulator import scaled_phase1
from repro.grid.host import HostPopulationModel, HostProfile


class TestAttritionModel:
    def test_no_attrition_by_default(self):
        model = HostPopulationModel(seed=3, horizon=100 * 86400.0)
        spec = model.spec(0)
        # Trace extends close to the horizon with sessions throughout.
        assert spec.trace.ends[-1] > 0.7 * model.horizon

    def test_heavy_attrition_truncates_traces(self):
        horizon = 100 * 86400.0
        stay = HostPopulationModel(seed=3, horizon=horizon)
        churn = stay.with_profile(attrition_weekly=0.5)
        last_active_stay = np.mean(
            [stay.spec(i).trace.ends[-1] for i in range(30)]
        )
        last_active_churn = np.mean(
            [
                churn.spec(i).trace.ends[-1]
                for i in range(30)
                if churn.spec(i).trace.n_intervals()
            ]
        )
        assert last_active_churn < 0.6 * last_active_stay

    def test_attrition_deterministic(self):
        model = HostPopulationModel(seed=5, horizon=50 * 86400.0).with_profile(
            attrition_weekly=0.3
        )
        a = model.spec(7)
        b = model.spec(7)
        np.testing.assert_array_equal(a.trace.ends, b.trace.ends)

    def test_tenure_scales_with_hazard(self):
        horizon = 400 * 86400.0
        mild = HostPopulationModel(seed=5, horizon=horizon).with_profile(
            attrition_weekly=0.05
        )
        harsh = HostPopulationModel(seed=5, horizon=horizon).with_profile(
            attrition_weekly=0.5
        )

        def mean_tenure(model):
            ends = [
                model.spec(i).trace.ends[-1]
                for i in range(40)
                if model.spec(i).trace.n_intervals()
            ]
            return float(np.mean(ends))

        assert mean_tenure(harsh) < mean_tenure(mild)


class TestAttritionCampaign:
    def test_churning_fleet_slows_campaign(self):
        def completion(attrition):
            sim = scaled_phase1(scale=300, n_proteins=10, horizon_weeks=80.0)
            sim.host_model = sim.host_model.with_profile(
                attrition_weekly=attrition
            )
            res = sim.run()
            return res.completion_weeks or float("inf")

        assert completion(0.20) > completion(0.0)

    def test_departed_hosts_never_stall_the_server(self):
        # Even with brutal churn the deadline machinery keeps reclaiming
        # work; the campaign finishes once arrivals replenish the fleet.
        sim = scaled_phase1(scale=500, n_proteins=8, horizon_weeks=120.0)
        sim.host_model = sim.host_model.with_profile(attrition_weekly=0.25)
        result = sim.run()
        stats = result.server.stats
        assert stats.effective == result.server.n_workunits or (
            result.completion_time is None and stats.effective > 0
        )
