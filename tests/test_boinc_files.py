"""Tests for repro.boinc.files: workunit input bundles."""

from __future__ import annotations

import pytest

from repro import constants as C
from repro.boinc.files import (
    PROGRAM_BYTES,
    pack_workunit,
    run_from_bundle,
    unpack_workunit,
)
from repro.core.workunit import WorkUnit
from repro.maxdo.resultfile import expected_line_count


def _wu(**kw):
    defaults = dict(
        wu_id=7, receptor=0, ligand=1, isep_start=3, nsep=2,
        cost_reference_s=1234.5,
    )
    defaults.update(kw)
    return WorkUnit(**defaults)


class TestPackUnpack:
    def test_roundtrip(self, tmp_path, tiny_receptor, tiny_ligand):
        bundle_dir = pack_workunit(
            tmp_path, _wu(), tiny_receptor, tiny_ligand,
            total_nsep=40, n_couples=4, n_gamma=2,
        )
        bundle = unpack_workunit(bundle_dir)
        assert bundle.workunit.wu_id == 7
        assert bundle.workunit.isep_start == 3
        assert bundle.workunit.nsep == 2
        assert bundle.total_nsep == 40
        assert bundle.receptor.n_beads == tiny_receptor.n_beads
        assert bundle.ligand.name == tiny_ligand.name

    def test_bundle_contains_four_files(self, tmp_path, tiny_receptor, tiny_ligand):
        bundle_dir = pack_workunit(
            tmp_path, _wu(), tiny_receptor, tiny_ligand, total_nsep=40
        )
        names = sorted(f.name for f in bundle_dir.iterdir())
        assert names == ["ligand.rpm", "params.txt", "program.bin", "receptor.rpm"]

    def test_respects_2mb_budget(self, tmp_path, tiny_receptor, tiny_ligand):
        bundle_dir = pack_workunit(
            tmp_path, _wu(), tiny_receptor, tiny_ligand, total_nsep=40
        )
        bundle = unpack_workunit(bundle_dir)
        assert bundle.total_bytes <= C.MAX_WORKUNIT_INPUT_BYTES
        assert bundle.total_bytes > PROGRAM_BYTES  # program dominates

    def test_biggest_phase1_couple_fits(self, tmp_path, phase1_library):
        # The two largest proteins of the library still fit the budget.
        import numpy as np

        order = np.argsort(phase1_library.residue_counts)[::-1]
        big1 = phase1_library.protein(int(order[0]))
        big2 = phase1_library.protein(int(order[1]))
        bundle_dir = pack_workunit(
            tmp_path, _wu(), big1, big2,
            total_nsep=int(phase1_library.nsep[int(order[0])]),
        )
        assert unpack_workunit(bundle_dir).total_bytes <= C.MAX_WORKUNIT_INPUT_BYTES

    def test_oversized_bundle_rejected(self, tmp_path, tiny_receptor, tiny_ligand):
        with pytest.raises(ValueError, match="budget"):
            pack_workunit(
                tmp_path, _wu(), tiny_receptor, tiny_ligand, total_nsep=40,
                program_bytes=3 * 10**6,
            )

    def test_missing_params_field(self, tmp_path, tiny_receptor, tiny_ligand):
        bundle_dir = pack_workunit(
            tmp_path, _wu(), tiny_receptor, tiny_ligand, total_nsep=40
        )
        params = bundle_dir / "params.txt"
        params.write_text(
            "\n".join(
                ln for ln in params.read_text().splitlines()
                if not ln.startswith("NSEP ")
            )
        )
        with pytest.raises(ValueError, match="NSEP"):
            unpack_workunit(bundle_dir)


class TestRunFromBundle:
    def test_executes_and_produces_results(
        self, tmp_path, tiny_receptor, tiny_ligand
    ):
        bundle_dir = pack_workunit(
            tmp_path / "in", _wu(), tiny_receptor, tiny_ligand,
            total_nsep=40, n_couples=3, n_gamma=2,
        )
        bundle = unpack_workunit(bundle_dir)
        run = run_from_bundle(bundle, tmp_path / "out", minimize=False)
        ck = run.run()
        assert ck.complete
        table = run.result_table()
        assert len(table) == expected_line_count(2, 3)

    def test_bundle_run_matches_direct_run(
        self, tmp_path, tiny_receptor, tiny_ligand
    ):
        import numpy as np

        from repro.maxdo.docking import MaxDoRun
        from repro.maxdo.resultfile import read_results

        bundle_dir = pack_workunit(
            tmp_path / "in", _wu(), tiny_receptor, tiny_ligand,
            total_nsep=40, n_couples=3, n_gamma=2,
        )
        bundle = unpack_workunit(bundle_dir)
        via_bundle = run_from_bundle(bundle, tmp_path / "a", minimize=False)
        via_bundle.run()
        direct = MaxDoRun(
            tiny_receptor, tiny_ligand, isep_start=3, nsep=2, total_nsep=40,
            workdir=tmp_path / "b", n_couples=3, n_gamma=2, minimize=False,
        )
        direct.run()
        a = read_results(via_bundle.partial_path).records
        b = read_results(direct.partial_path).records
        # The fixed-width protein format rounds coordinates to 1e-5 A, so
        # energies agree to formatting precision rather than bit-exactly.
        np.testing.assert_allclose(a["e_tot"], b["e_tot"], rtol=2e-3, atol=2e-3)
