"""Tests for repro.maxdo.orientations: the 21 x 10 orientation grid."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.maxdo.orientations import (
    N_COUPLES,
    N_GAMMA,
    euler_from_matrix,
    gamma_values,
    orientation_couples,
    rotation_matrices,
    rotation_matrix,
)

angles = st.floats(min_value=-np.pi, max_value=np.pi, allow_nan=False)


class TestGrid:
    def test_paper_counts(self):
        assert N_COUPLES == 21
        assert N_GAMMA == 10
        assert orientation_couples().shape == (21, 2)
        assert len(gamma_values()) == 10

    def test_gamma_evenly_spaced(self):
        g = gamma_values(10)
        np.testing.assert_allclose(np.diff(g), 2 * np.pi / 10)
        assert g[0] == 0.0
        assert g[-1] < 2 * np.pi

    def test_gamma_rejects_zero(self):
        with pytest.raises(ValueError):
            gamma_values(0)

    def test_couples_in_range(self):
        couples = orientation_couples(21)
        assert (couples[:, 0] >= -np.pi).all() and (couples[:, 0] <= np.pi).all()
        assert (couples[:, 1] >= 0).all() and (couples[:, 1] <= np.pi).all()

    def test_couples_distinct(self):
        couples = orientation_couples(21)
        assert len(np.unique(couples.round(10), axis=0)) == 21

    def test_total_orientations(self):
        # 21 couples x 10 gamma = the paper's 210 starting orientations.
        assert len(orientation_couples()) * len(gamma_values()) == 210


class TestRotationMatrix:
    def test_identity(self):
        np.testing.assert_allclose(rotation_matrix(0, 0, 0), np.eye(3), atol=1e-15)

    @given(angles, angles, angles)
    @settings(max_examples=50, deadline=None)
    def test_orthonormal(self, a, b, g):
        rot = rotation_matrix(a, b, g)
        np.testing.assert_allclose(rot @ rot.T, np.eye(3), atol=1e-12)
        assert np.linalg.det(rot) == pytest.approx(1.0)

    def test_alpha_gamma_compose_at_beta_zero(self):
        np.testing.assert_allclose(
            rotation_matrix(0.3, 0.0, 0.4), rotation_matrix(0.7, 0.0, 0.0), atol=1e-12
        )

    def test_vectorized_matches_scalar(self):
        rng = np.random.default_rng(5)
        abc = rng.uniform(-np.pi, np.pi, size=(20, 3))
        batch = rotation_matrices(abc)
        for k in range(20):
            np.testing.assert_allclose(batch[k], rotation_matrix(*abc[k]), atol=1e-13)

    def test_vectorized_shape_validation(self):
        with pytest.raises(ValueError):
            rotation_matrices(np.zeros((3, 2)))


class TestEulerRecovery:
    @given(angles, st.floats(min_value=0.05, max_value=np.pi - 0.05), angles)
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_generic(self, a, b, g):
        rot = rotation_matrix(a, b, g)
        recovered = rotation_matrix(*euler_from_matrix(rot))
        np.testing.assert_allclose(recovered, rot, atol=1e-9)

    @pytest.mark.parametrize("beta", [0.0, np.pi])
    @pytest.mark.parametrize("a,g", [(0.0, 0.0), (0.5, 0.3), (-2.0, 1.0)])
    def test_roundtrip_degenerate(self, beta, a, g):
        rot = rotation_matrix(a, beta, g)
        recovered = rotation_matrix(*euler_from_matrix(rot))
        np.testing.assert_allclose(recovered, rot, atol=1e-9)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            euler_from_matrix(np.eye(2))
