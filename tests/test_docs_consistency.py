"""Doc-consistency checks for the observability and service layers.

Tier-1-enforced invariants tying together the three places an event type
exists: the taxonomy registry (``repro.obs.events.EVENT_TYPES``), the
emitting code (``*.emit("...")`` call sites under ``src/repro``) and the
taxonomy table in ``docs/observability.md``.  An event type present in
one but missing from another fails here, so the docs cannot drift from
the code.  The same discipline applies to the scheduler service's wire
protocol: the endpoint table in ``docs/service.md`` must list exactly
the routes the service registers (``repro.service.ENDPOINTS``).
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.obs import CHANNELS, EVENT_TYPES, TRACE_SCHEMA_VERSION, channel_of
from repro.service import ENDPOINTS, WIRE_PROTOCOL_VERSION
from repro.service.app import ROUTES

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"
OBS_DOC = REPO / "docs" / "observability.md"
SERVICE_DOC = REPO / "docs" / "service.md"

#: an emit call site with a literal event type (possibly line-wrapped)
_EMIT_RE = re.compile(r'\.emit\(\s*"([a-z_]+\.[a-z_]+)"')


def emitted_event_types() -> dict[str, list[Path]]:
    """Event type -> source files that emit it (literal call sites)."""
    sites: dict[str, list[Path]] = {}
    for path in sorted(SRC.rglob("*.py")):
        for etype in _EMIT_RE.findall(path.read_text(encoding="utf-8")):
            sites.setdefault(etype, []).append(path)
    return sites


def test_every_emitted_type_is_declared():
    undeclared = {
        etype: [str(p.relative_to(REPO)) for p in paths]
        for etype, paths in emitted_event_types().items()
        if etype not in EVENT_TYPES
    }
    assert not undeclared, (
        f"event types emitted but missing from EVENT_TYPES: {undeclared}"
    )


def test_every_declared_type_is_emitted_somewhere():
    emitted = set(emitted_event_types())
    dead = sorted(set(EVENT_TYPES) - emitted)
    assert not dead, (
        f"event types declared in EVENT_TYPES but never emitted: {dead}"
    )


def test_every_event_type_documented_in_taxonomy_table():
    text = OBS_DOC.read_text(encoding="utf-8")
    missing = sorted(
        etype for etype in EVENT_TYPES if f"`{etype}`" not in text
    )
    assert not missing, (
        f"event types missing from docs/observability.md: {missing}"
    )


def test_every_channel_documented():
    text = OBS_DOC.read_text(encoding="utf-8")
    missing = sorted(ch for ch in CHANNELS if f"`{ch}`" not in text)
    assert not missing, f"channels missing from docs/observability.md: {missing}"


def test_channels_cover_event_types_exactly():
    used = {channel_of(etype) for etype in EVENT_TYPES}
    assert used == set(CHANNELS)


def test_schema_version_documented():
    text = OBS_DOC.read_text(encoding="utf-8")
    assert f"**Schema version:** {TRACE_SCHEMA_VERSION}" in text, (
        "docs/observability.md must state the current trace schema version "
        f"as '**Schema version:** {TRACE_SCHEMA_VERSION}'"
    )


#: a row of the docs/service.md endpoint table: | `METHOD` | `path` | ... |
_ENDPOINT_ROW_RE = re.compile(r"^\|\s*`(GET|POST|PUT|DELETE)`\s*\|\s*`(/[^`]*)`\s*\|")


def documented_endpoints() -> list[tuple[str, str]]:
    """(method, path) rows of the endpoint table in docs/service.md."""
    rows = []
    for line in SERVICE_DOC.read_text(encoding="utf-8").splitlines():
        match = _ENDPOINT_ROW_RE.match(line.strip())
        if match:
            rows.append((match.group(1), match.group(2)))
    return rows


def test_service_doc_endpoint_table_matches_registered_routes():
    documented = documented_endpoints()
    assert documented, "docs/service.md lost its endpoint table"
    assert documented == [(m, p) for m, p, _ in ENDPOINTS], (
        "the endpoint table in docs/service.md does not match "
        "repro.service.ENDPOINTS (same rows, same order required)"
    )
    assert set(ROUTES) == {(m, p) for m, p, _ in ENDPOINTS}, (
        "repro.service registers routes that ENDPOINTS does not declare"
    )


def test_fleet_endpoints_registered_and_documented():
    """The forensics endpoints stay pinned: ENDPOINTS ⇆ ROUTES ⇆ docs."""
    declared = {(m, p) for m, p, _ in ENDPOINTS}
    documented = set(documented_endpoints())
    for route in (("GET", "/v1/hosts"), ("GET", "/v1/metrics")):
        assert route in declared, f"{route} missing from ENDPOINTS"
        assert route in ROUTES, f"{route} missing from registered ROUTES"
        assert route in documented, f"{route} missing from docs/service.md"


def test_host_ledger_event_types_pinned():
    """The ledger's trust-trajectory events stay registered, emitted on
    the ``host`` channel, and backtick-documented in the taxonomy."""
    expected = {"host.trusted", "host.demoted", "host.spot_check", "host.credit"}
    assert expected <= set(EVENT_TYPES)
    assert {channel_of(etype) for etype in expected} == {"host"}
    assert "host" in CHANNELS
    emitted = emitted_event_types()
    text = OBS_DOC.read_text(encoding="utf-8")
    for etype in sorted(expected):
        assert etype in emitted, f"{etype} has no literal emit site"
        assert f"`{etype}`" in text, f"{etype} undocumented in the taxonomy"


def test_service_doc_states_wire_protocol_version():
    text = SERVICE_DOC.read_text(encoding="utf-8")
    assert f"**Wire protocol version:** {WIRE_PROTOCOL_VERSION}" in text, (
        "docs/service.md must state the current wire protocol version as "
        f"'**Wire protocol version:** {WIRE_PROTOCOL_VERSION}'"
    )


def test_service_doc_documents_every_refusal_reason():
    from repro.service.protocol import REFUSAL_REASONS

    text = SERVICE_DOC.read_text(encoding="utf-8")
    missing = sorted(r for r in REFUSAL_REASONS if f"`{r}`" not in text)
    assert not missing, (
        f"refusal reasons missing from docs/service.md: {missing}"
    )


def test_instrumented_modules_cross_reference_the_doc():
    """The instrumented modules point readers at docs/observability.md."""
    for module in (
        SRC / "obs" / "__init__.py",
        SRC / "grid" / "des.py",
        SRC / "boinc" / "server.py",
        SRC / "boinc" / "agent.py",
        SRC / "boinc" / "simulator.py",
        SRC / "maxdo" / "docking.py",
    ):
        assert "docs/observability.md" in module.read_text(encoding="utf-8"), (
            f"{module.relative_to(REPO)} lost its observability cross-reference"
        )
