"""Tests for repro.core.metrics: VFTP, redundancy, speed-down, equivalence."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import constants as C
from repro.core.metrics import (
    CampaignMetrics,
    dedicated_equivalent,
    redundancy_factor,
    speed_down_net,
    speed_down_raw,
    virtual_full_time_processors,
)
from repro.units import SECONDS_PER_DAY, SECONDS_PER_WEEK, years


class TestVFTP:
    def test_paper_definition(self):
        # "10 years of cpu time for 1 day" = 3650 processors (Section 3.1).
        assert virtual_full_time_processors(years(10), SECONDS_PER_DAY) == 3650

    def test_one_processor(self):
        assert virtual_full_time_processors(SECONDS_PER_DAY, SECONDS_PER_DAY) == 1.0

    def test_rejects_zero_span(self):
        with pytest.raises(ValueError):
            virtual_full_time_processors(1.0, 0.0)

    def test_rejects_negative_cpu(self):
        with pytest.raises(ValueError):
            virtual_full_time_processors(-1.0, 1.0)

    @given(
        st.floats(min_value=1, max_value=1e15),
        st.floats(min_value=1, max_value=1e10),
    )
    def test_scaling_property(self, cpu, span):
        v = virtual_full_time_processors(cpu, span)
        assert virtual_full_time_processors(2 * cpu, span) == pytest.approx(2 * v)


class TestRedundancy:
    def test_paper_value(self):
        assert redundancy_factor(
            C.RESULTS_DISCLOSED, C.RESULTS_EFFECTIVE
        ) == pytest.approx(1.3765, abs=1e-3)

    def test_rejects_effective_above_disclosed(self):
        with pytest.raises(ValueError):
            redundancy_factor(5, 10)

    def test_rejects_zero_effective(self):
        with pytest.raises(ValueError):
            redundancy_factor(5, 0)


class TestSpeedDown:
    def test_paper_raw(self):
        assert speed_down_raw(
            C.TOTAL_WCG_CPU_S, C.TOTAL_REFERENCE_CPU_S
        ) == pytest.approx(5.43, abs=0.01)

    def test_paper_net(self):
        assert speed_down_net(5.43, 1.37) == pytest.approx(3.96, abs=0.01)

    def test_rejects_redundancy_below_one(self):
        with pytest.raises(ValueError):
            speed_down_net(5.0, 0.9)


class TestCampaignMetrics:
    @pytest.fixture()
    def paper_metrics(self):
        """Phase I's whole-period accounting reconstructed from the paper."""
        return CampaignMetrics(
            span_seconds=26 * SECONDS_PER_WEEK,
            consumed_cpu_s=C.TOTAL_WCG_CPU_S,
            useful_reference_cpu_s=C.TOTAL_REFERENCE_CPU_S,
            results_disclosed=C.RESULTS_DISCLOSED,
            results_effective=C.RESULTS_EFFECTIVE,
        )

    def test_vftp_whole_period(self, paper_metrics):
        # 8,082 years over 26 weeks ~ 16,218 VFTP (Table 2 says 16,450 from
        # slightly different accounting).
        assert paper_metrics.vftp == pytest.approx(C.HCMD_VFTP_WHOLE_PERIOD, rel=0.03)

    def test_dedicated_equivalent(self, paper_metrics):
        assert paper_metrics.dedicated_equivalent == pytest.approx(
            C.DEDICATED_EQUIV_WHOLE_PERIOD, rel=0.03
        )

    def test_speed_downs(self, paper_metrics):
        assert paper_metrics.speed_down_raw == pytest.approx(5.43, abs=0.01)
        assert paper_metrics.speed_down_net == pytest.approx(3.95, abs=0.02)

    def test_useful_fraction(self, paper_metrics):
        assert paper_metrics.useful_result_fraction == pytest.approx(0.7265, abs=1e-3)

    def test_mean_device_time(self, paper_metrics):
        # ~13 hours per result on the volunteer devices.
        assert paper_metrics.mean_device_seconds_per_result == pytest.approx(
            C.WCG_RESULT_MEAN_S, rel=0.01
        )

    def test_equivalence_row(self, paper_metrics):
        vftp, dedicated = paper_metrics.equivalence_row()
        assert vftp / dedicated == pytest.approx(5.43, abs=0.02)

    def test_cpu_days_per_day_equals_vftp(self, paper_metrics):
        assert paper_metrics.cpu_days_per_day == pytest.approx(paper_metrics.vftp)

    def test_internal_consistency_property(self):
        m = CampaignMetrics(
            span_seconds=1e6,
            consumed_cpu_s=5e8,
            useful_reference_cpu_s=1e8,
            results_disclosed=1400,
            results_effective=1000,
        )
        assert m.speed_down_net * m.redundancy == pytest.approx(m.speed_down_raw)
        assert m.vftp / m.dedicated_equivalent == pytest.approx(m.speed_down_raw)


class TestDedicatedEquivalent:
    def test_identity_for_reference_grid(self):
        # A dedicated grid's own useful work per unit time is its size.
        assert dedicated_equivalent(100 * SECONDS_PER_DAY, SECONDS_PER_DAY) == 100
