"""Tests for repro.analysis.timeseries."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.timeseries import (
    WeeklySeries,
    cpu_days_to_vftp,
    cpu_years_per_day_to_vftp,
    segment_phases,
)


class TestConversions:
    def test_cpu_days(self):
        assert float(cpu_days_to_vftp(86_400.0)) == 1.0

    def test_cpu_years_paper_example(self):
        # "if for 1 day, 10 years of cpu time are consumed, it is equivalent
        # to at least 3,650 processors" (Section 3.1).
        assert float(cpu_years_per_day_to_vftp(10.0)) == 3650.0

    def test_vectorized(self):
        out = cpu_years_per_day_to_vftp(np.array([1.0, 2.0]))
        np.testing.assert_allclose(out, [365.0, 730.0])


class TestWeeklySeries:
    def test_from_daily(self):
        daily = np.concatenate([np.full(7, 2.0), np.full(7, 4.0)])
        ws = WeeklySeries.from_daily(daily)
        assert ws.values.tolist() == [2.0, 4.0]

    def test_from_daily_drops_partial_week(self):
        ws = WeeklySeries.from_daily(np.ones(10))
        assert len(ws) == 1

    def test_from_daily_too_short(self):
        with pytest.raises(ValueError):
            WeeklySeries.from_daily(np.ones(5))

    def test_average_window(self):
        ws = WeeklySeries(np.array([1.0, 2.0, 3.0, 4.0]))
        assert ws.average(1, 3) == 2.5

    def test_average_empty_window(self):
        ws = WeeklySeries(np.array([1.0]))
        with pytest.raises(ValueError):
            ws.average(5, 5)


class TestSegmentPhases:
    def _series(self):
        # control ~1, ramp, full power ~10.
        return np.concatenate([
            np.full(9, 1.0),
            np.linspace(1.5, 9.0, 4),
            np.full(13, 10.0),
        ])

    def test_three_phases_partition(self):
        phases = segment_phases(self._series())
        spans = list(phases.values())
        assert spans[0][0] == 0
        assert spans[-1][1] == 26
        for (a, b), (c, d) in zip(spans, spans[1:]):
            assert b == c

    def test_full_power_detected(self):
        phases = segment_phases(self._series())
        start, end = phases["full power working phase"]
        assert 11 <= start <= 13
        assert end == 26

    def test_control_period_detected(self):
        phases = segment_phases(self._series())
        start, end = phases["control period"]
        assert start == 0
        assert 8 <= end <= 10

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            segment_phases(np.array([1.0, 2.0]))

    def test_zero_series_rejected(self):
        with pytest.raises(ValueError):
            segment_phases(np.zeros(10))
