"""Tests for repro.core.campaign: release ordering and Figure 7."""

from __future__ import annotations

import numpy as np
import pytest

from repro import constants as C
from repro.core.campaign import CampaignPlan


@pytest.fixture(scope="module")
def plan(small_library, small_cost_model):
    return CampaignPlan(small_library, small_cost_model)


class TestReleaseOrder:
    def test_least_cost_first(self, plan):
        works = plan.batch_work[plan.release_order]
        assert (np.diff(works) >= 0).all()

    def test_order_is_permutation(self, plan, small_library):
        assert sorted(plan.release_order.tolist()) == list(range(len(small_library)))

    def test_total_work_matches_cost_model(self, plan, small_cost_model):
        assert plan.total_work == pytest.approx(
            small_cost_model.total_reference_cpu()
        )

    def test_ordered_couples_batch_structure(self, plan, small_library):
        couples = plan.ordered_couples()
        n = len(small_library)
        assert len(couples) == n * n
        # Each consecutive block of n couples shares one receptor.
        for b in range(n):
            block = couples[b * n : (b + 1) * n]
            receptors = {i for i, _ in block}
            assert receptors == {int(plan.release_order[b])}
            assert [j for _, j in block] == list(range(n))


class TestSnapshots:
    def test_zero_work(self, plan):
        snap = plan.snapshot(0.0)
        assert snap.work_fraction == 0.0
        assert snap.proteins_complete == 0

    def test_all_work(self, plan):
        snap = plan.snapshot(plan.total_work)
        assert snap.work_fraction == pytest.approx(1.0)
        assert snap.proteins_complete == len(plan.library)

    def test_partial_work_fills_in_order(self, plan):
        # Half the work: a prefix of batches complete, one partial, rest zero.
        snap = plan.snapshot(0.5 * plan.total_work)
        f = snap.fractions
        boundary = int((f >= 1.0).sum())
        assert (f[:boundary] == 1.0).all()
        assert (f[boundary + 1 :] == 0.0).all()

    def test_clamps_overflow(self, plan):
        snap = plan.snapshot(10 * plan.total_work)
        assert snap.work_fraction == pytest.approx(1.0)

    def test_monotone_in_work(self, plan):
        fracs = [
            plan.snapshot(x * plan.total_work).protein_fraction_complete
            for x in np.linspace(0, 1, 11)
        ]
        assert fracs == sorted(fracs)


class TestFigure7Shape:
    def test_small_proteins_finish_early(self, plan):
        # Completing most proteins accounts for much less of the work —
        # the essence of Figure 7.
        k = int(0.8 * len(plan.library))
        assert plan.batch_release_fraction(k) < 0.8

    def test_paper_anchor_on_phase1(self, phase1_library, phase1_cost_model):
        plan = CampaignPlan(phase1_library, phase1_cost_model)
        work_at_85 = plan.work_at_protein_fraction(0.85)
        # Paper: 85% of proteins docked = 47% of the computation.
        assert work_at_85 == pytest.approx(
            C.PROGRESSION_SNAPSHOT_WORK_FRACTION, abs=0.08
        )

    def test_cumulative_percent_curve(self, plan):
        total_pct, done_pct = plan.cumulative_percent_curve(0.3 * plan.total_work)
        assert len(total_pct) == len(plan.library)
        assert total_pct[-1] == pytest.approx(100.0)
        assert (done_pct <= total_pct + 1e-9).all()
        assert done_pct[-1] == pytest.approx(30.0, abs=0.5)

    def test_batch_release_fraction_bounds(self, plan):
        assert plan.batch_release_fraction(0) == 0.0
        assert plan.batch_release_fraction(len(plan.library)) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            plan.batch_release_fraction(-1)

    def test_work_at_protein_fraction_validates(self, plan):
        with pytest.raises(ValueError):
            plan.work_at_protein_fraction(1.5)


class TestValidation:
    def test_size_mismatch_rejected(self, small_library, phase1_cost_model):
        with pytest.raises(ValueError):
            CampaignPlan(small_library, phase1_cost_model)
