"""Tests for repro.core.projection: Table 3 and Section 7 arithmetic."""

from __future__ import annotations

import pytest

from repro import constants as C
from repro.core.projection import Phase2Projection, project_phase2, work_ratio


class TestWorkRatio:
    def test_paper_value(self):
        # 4000^2 / (168^2 * 100) ~ 5.67
        assert work_ratio(4000) == pytest.approx(5.6689, abs=1e-3)

    def test_quadratic_in_proteins(self):
        assert work_ratio(336, 168, 1.0) == pytest.approx(4.0)

    def test_linear_in_reduction(self):
        assert work_ratio(168, 168, 10.0) == pytest.approx(0.1)

    def test_identity(self):
        assert work_ratio(168, 168, 1.0) == 1.0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            work_ratio(0)
        with pytest.raises(ValueError):
            work_ratio(100, point_reduction=0.0)


class TestTable3:
    @pytest.fixture(scope="class")
    def projection(self) -> Phase2Projection:
        return project_phase2()

    def test_phase2_cpu(self, projection):
        assert projection.phase2_cpu_s == pytest.approx(C.PHASE2_CPU_S, rel=1e-3)

    def test_phase1_vftp(self, projection):
        assert round(projection.phase1_vftp) == C.PHASE1_VFTP

    def test_phase2_vftp(self, projection):
        assert round(projection.phase2_vftp) == C.PHASE2_VFTP

    def test_phase2_members(self, projection):
        assert round(projection.phase2_members) == pytest.approx(
            C.PHASE2_MEMBERS, abs=2
        )

    def test_rows_structure(self, projection):
        rows = projection.rows()
        assert [r[0] for r in rows] == [
            "cpu time in s",
            "Nb weeks",
            "Nb virtual full-time processors",
            "Nb members",
        ]
        assert rows[1][1] == 16 and rows[1][2] == 40

    def test_weeks_at_phase1_rate(self, projection):
        # "if it behaves like for the first step, it will take 90 weeks".
        assert projection.weeks_at_phase1_rate == pytest.approx(
            C.PHASE2_WEEKS_AT_PHASE1_RATE, abs=2
        )

    def test_members_needed_at_quarter_share(self, projection):
        # 25% grid share -> ~1.2-1.3M members ("nearly 1,000,000 new").
        members = projection.members_needed(C.PHASE2_GRID_SHARE)
        assert members == pytest.approx(C.PHASE2_MEMBERS_NEEDED, rel=0.10)
        assert members - C.WCG_MEMBERS > 800_000

    def test_members_needed_validates_share(self, projection):
        with pytest.raises(ValueError):
            projection.members_needed(0.0)

    def test_ratio(self, projection):
        assert projection.ratio == pytest.approx(C.PHASE2_WORK_RATIO, rel=1e-6)


class TestCustomProjections:
    def test_longer_deadline_needs_fewer_processors(self):
        p40 = project_phase2(phase2_weeks=40)
        p80 = project_phase2(phase2_weeks=80)
        assert p80.phase2_vftp == pytest.approx(p40.phase2_vftp / 2)

    def test_more_proteins_quadratic(self):
        p = project_phase2(n_proteins_new=8000)
        assert p.ratio == pytest.approx(4 * C.PHASE2_WORK_RATIO, rel=1e-6)
