"""Tests for repro.grid.profiles: device classes and fleet mixtures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.boinc.simulator import scaled_phase1
from repro.grid.profiles import (
    ALWAYS_ON,
    HOME_EVENING,
    LAPTOP,
    OFFICE_DESKTOP,
    DeviceClass,
    MixtureHostModel,
    wcg_fleet_mixture,
)


class TestDeviceClasses:
    def test_default_mixture_weights_sensible(self):
        classes = wcg_fleet_mixture()
        assert len(classes) == 4
        total = sum(c.weight for c in classes)
        assert total == pytest.approx(1.0)

    def test_always_on_most_available(self):
        def availability(c: DeviceClass) -> float:
            p = c.profile
            return p.mean_on_hours / (p.mean_on_hours + p.mean_off_hours)

        assert availability(ALWAYS_ON) > availability(OFFICE_DESKTOP)
        assert availability(OFFICE_DESKTOP) > availability(HOME_EVENING)
        assert availability(HOME_EVENING) > availability(LAPTOP)

    def test_weight_validation(self):
        with pytest.raises(ValueError):
            DeviceClass("bad", HOME_EVENING.profile, weight=0.0)


class TestMixtureModel:
    @pytest.fixture(scope="class")
    def model(self):
        return MixtureHostModel(seed=13)

    def test_class_assignment_stable(self, model):
        assert model.class_of(5).name == model.class_of(5).name
        other = MixtureHostModel(seed=13)
        assert model.class_of(5).name == other.class_of(5).name

    def test_spec_matches_class(self, model):
        # A host's spec must be drawn from its class's parameters: check
        # an always-on host has a much fuller trace than a laptop host.
        labels = {model.class_of(i).name: i for i in range(200)}
        assert len(labels) == 4  # all classes realized in 200 hosts
        always = model.spec(labels["always-on"])
        laptop = model.spec(labels["laptop"])
        horizon = model.horizon
        assert always.trace.total_available / horizon > 0.75
        assert laptop.trace.total_available / horizon < 0.45

    def test_class_shares_converge(self, model):
        shares = model.class_shares(800)
        assert shares["home-evening"] == pytest.approx(0.55, abs=0.07)
        assert shares["always-on"] == pytest.approx(0.05, abs=0.03)

    def test_blended_profile_between_extremes(self, model):
        blended = model.profile
        ons = [c.profile.mean_on_hours for c in model.classes]
        assert min(ons) < blended.mean_on_hours < max(ons)

    def test_with_profile_overrides_all_classes(self, model):
        overridden = model.with_profile(reliability=0.5)
        for c in overridden.classes:
            assert c.profile.reliability == 0.5

    def test_empty_mixture_rejected(self):
        with pytest.raises(ValueError):
            MixtureHostModel(classes=[])

    def test_class_shares_validation(self, model):
        with pytest.raises(ValueError):
            model.class_shares(0)


class TestCampaignWithMixture:
    def test_campaign_runs_with_mixture_fleet(self):
        sim = scaled_phase1(scale=400, n_proteins=8)
        sim.host_model = MixtureHostModel(seed=sim.seed, horizon=sim.horizon_s)
        result = sim.run()
        assert result.server.stats.effective == result.server.n_workunits

    def test_all_laptop_fleet_is_slower(self):
        def completion(classes):
            sim = scaled_phase1(scale=400, n_proteins=8)
            sim.host_model = MixtureHostModel(
                classes=classes, seed=sim.seed, horizon=sim.horizon_s
            )
            res = sim.run()
            return res.completion_weeks or float("inf")

        laptops = [DeviceClass("laptop", LAPTOP.profile, 1.0)]
        dedicated = [DeviceClass("always-on", ALWAYS_ON.profile, 1.0)]
        assert completion(dedicated) < completion(laptops)
