"""Tests for repro.maxdo.docking: the energy-map driver and MaxDoRun."""

from __future__ import annotations

import numpy as np
import pytest

from repro.maxdo.docking import MaxDoRun, dock_couple, ligand_start_positions
from repro.maxdo.resultfile import expected_line_count, read_results


def _dock(receptor, ligand, **kw):
    defaults = dict(
        isep_start=1, nsep=2, total_nsep=40, n_couples=3, n_gamma=2, minimize=False
    )
    defaults.update(kw)
    return dock_couple(receptor, ligand, **defaults)


class TestLigandStartPositions:
    def test_pushes_anchors_outward_radially(self, tiny_ligand):
        anchors = np.array([[10.0, 0.0, 0.0], [0.0, 20.0, 0.0]])
        out = ligand_start_positions(anchors, tiny_ligand)
        r = tiny_ligand.bounding_radius
        np.testing.assert_allclose(out[0], [10.0 + r, 0.0, 0.0])
        np.testing.assert_allclose(out[1], [0.0, 20.0 + r, 0.0])

    def test_directions_preserved(self, tiny_ligand):
        anchors = np.array([[3.0, 4.0, 0.0]])
        out = ligand_start_positions(anchors, tiny_ligand)
        np.testing.assert_allclose(
            out[0] / np.linalg.norm(out[0]), anchors[0] / 5.0
        )

    def test_clearance_prevents_deep_overlap(self, tiny_receptor, tiny_ligand):
        # Energies at offset start poses are finite and not astronomically
        # repulsive (the pre-offset bug buried the ligand inside the
        # receptor and produced 1e5-scale energies).
        r = dock_couple(
            tiny_receptor, tiny_ligand, isep_start=1, nsep=4, total_nsep=40,
            n_couples=2, n_gamma=1, minimize=False,
        )
        assert r.e_total.max() < 1e4


class TestDockCouple:
    def test_shapes(self, tiny_receptor, tiny_ligand):
        r = _dock(tiny_receptor, tiny_ligand)
        assert r.e_lj.shape == (2, 3, 2)
        assert r.positions.shape == (2, 3, 2, 3)

    def test_total_energy_is_sum(self, tiny_receptor, tiny_ligand):
        r = _dock(tiny_receptor, tiny_ligand)
        np.testing.assert_allclose(r.e_total, r.e_lj + r.e_elec)

    def test_slices_tile_consistently(self, tiny_receptor, tiny_ligand):
        # Workunit slices evaluate the SAME physical positions as one big
        # run — the invariant that makes per-couple slicing legal.
        full = _dock(tiny_receptor, tiny_ligand, isep_start=1, nsep=4, total_nsep=40)
        part1 = _dock(tiny_receptor, tiny_ligand, isep_start=1, nsep=2, total_nsep=40)
        part2 = _dock(tiny_receptor, tiny_ligand, isep_start=3, nsep=2, total_nsep=40)
        np.testing.assert_allclose(full.e_lj[:2], part1.e_lj)
        np.testing.assert_allclose(full.e_lj[2:], part2.e_lj)

    def test_best_index(self, tiny_receptor, tiny_ligand):
        r = _dock(tiny_receptor, tiny_ligand)
        p, c, g = r.best()
        assert r.e_total[p, c, g] == r.e_total.min()

    def test_minimize_improves_on_start(self, tiny_receptor, tiny_ligand):
        raw = _dock(tiny_receptor, tiny_ligand, nsep=1, n_couples=2, n_gamma=1)
        opt = _dock(
            tiny_receptor, tiny_ligand, nsep=1, n_couples=2, n_gamma=1,
            minimize=True, max_iterations=40,
        )
        assert (opt.e_total <= raw.e_total + 1e-9).all()

    def test_to_lines_one_per_couple(self, tiny_receptor, tiny_ligand):
        r = _dock(tiny_receptor, tiny_ligand)
        lines = r.to_lines()
        assert len(lines) == expected_line_count(2, 3)

    def test_bad_slice_rejected(self, tiny_receptor, tiny_ligand):
        with pytest.raises(ValueError):
            _dock(tiny_receptor, tiny_ligand, isep_start=40, nsep=2, total_nsep=40)
        with pytest.raises(ValueError):
            _dock(tiny_receptor, tiny_ligand, isep_start=0)


class TestMaxDoRun:
    def _run(self, tmp_path, receptor, ligand, **kw):
        defaults = dict(
            isep_start=1, nsep=3, total_nsep=40, workdir=tmp_path,
            n_couples=3, n_gamma=2, minimize=False,
        )
        defaults.update(kw)
        return MaxDoRun(receptor, ligand, **defaults)

    def test_run_to_completion(self, tmp_path, tiny_receptor, tiny_ligand):
        run = self._run(tmp_path, tiny_receptor, tiny_ligand)
        ck = run.run()
        assert ck.complete
        table = run.result_table()
        assert len(table) == expected_line_count(3, 3)

    def test_interrupt_resume_equals_straight_run(
        self, tmp_path, tiny_receptor, tiny_ligand
    ):
        d1 = tmp_path / "a"
        d2 = tmp_path / "b"
        straight = self._run(d1, tiny_receptor, tiny_ligand)
        straight.run()
        interrupted = self._run(d2, tiny_receptor, tiny_ligand)
        interrupted.run(max_positions=1)
        resumed = self._run(d2, tiny_receptor, tiny_ligand)
        resumed.run()
        a = read_results(straight.partial_path).records
        b = read_results(resumed.partial_path).records
        np.testing.assert_array_equal(a, b)

    def test_finalize(self, tmp_path, tiny_receptor, tiny_ligand):
        run = self._run(tmp_path, tiny_receptor, tiny_ligand)
        run.run()
        final = run.finalize()
        assert final.exists()
        assert not run.partial_path.exists()
        assert not run.checkpoint_path.exists()

    def test_finalize_incomplete_rejected(self, tmp_path, tiny_receptor, tiny_ligand):
        run = self._run(tmp_path, tiny_receptor, tiny_ligand)
        run.run(max_positions=1)
        with pytest.raises(RuntimeError):
            run.finalize()

    def test_mid_position_kill_rolls_back(self, tmp_path, tiny_receptor, tiny_ligand):
        run = self._run(tmp_path, tiny_receptor, tiny_ligand)
        run.run(max_positions=1)
        # Simulate a kill mid-position: stray uncommitted lines appear.
        with run.partial_path.open("a") as fh:
            fh.write("1 1 1 0 0 0 0 0 0 0 0 0\n")
        resumed = self._run(tmp_path, tiny_receptor, tiny_ligand)
        ck = resumed.run()
        assert ck.complete
        assert len(read_results(resumed.partial_path)) == expected_line_count(3, 3)
