"""Tests for repro.maxdo.energy: the simplified interaction energy."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.maxdo.energy import (
    energy_and_bead_gradient,
    interaction_energy,
    pair_energies,
)
from repro.maxdo.orientations import rotation_matrix
from repro.proteins.model import synthesize_protein
from repro.rng import stream


def _sep(receptor, ligand, extra=4.0):
    return receptor.bounding_radius + ligand.bounding_radius + extra


class TestPairEnergies:
    def test_reproducible(self, tiny_receptor, tiny_ligand):
        t = np.array([_sep(tiny_receptor, tiny_ligand), 0.0, 0.0])
        a = interaction_energy(tiny_receptor, tiny_ligand, np.eye(3), t)
        b = interaction_energy(tiny_receptor, tiny_ligand, np.eye(3), t)
        assert a == b  # bit-identical: "reproducible computing time/result"

    def test_far_apart_is_negligible(self, tiny_receptor, tiny_ligand):
        t = np.array([1e4, 0.0, 0.0])
        lj, el = interaction_energy(tiny_receptor, tiny_ligand, np.eye(3), t)
        assert abs(lj) < 1e-6
        assert abs(el) < 1e-6

    def test_finite_at_full_overlap(self, tiny_receptor, tiny_ligand):
        lj, el = interaction_energy(tiny_receptor, tiny_ligand, np.eye(3), np.zeros(3))
        assert np.isfinite(lj) and np.isfinite(el)
        assert lj > 0  # strongly repulsive

    def test_attractive_well_exists(self, tiny_receptor, tiny_ligand):
        # Somewhere between contact and infinity the LJ term must be negative.
        base = _sep(tiny_receptor, tiny_ligand, 0.0)
        seps = np.linspace(base - 2.0, base + 12.0, 40)
        ljs = [
            interaction_energy(
                tiny_receptor, tiny_ligand, np.eye(3), np.array([s, 0.0, 0.0])
            )[0]
            for s in seps
        ]
        assert min(ljs) < 0

    def test_global_rigid_motion_invariance(self, tiny_receptor, tiny_ligand):
        # Rotating BOTH bead sets by the same rigid transform preserves the
        # energy (it only depends on relative geometry).
        t = np.array([_sep(tiny_receptor, tiny_ligand), 1.0, -2.0])
        lig_coords = tiny_ligand.transformed(np.eye(3), t)
        e0 = pair_energies(
            tiny_receptor.coords, tiny_receptor.radii, tiny_receptor.epsilons,
            tiny_receptor.charges, lig_coords, tiny_ligand.radii,
            tiny_ligand.epsilons, tiny_ligand.charges,
        )
        rot = rotation_matrix(0.4, 1.0, -0.7)
        shift = np.array([5.0, 6.0, 7.0])
        e1 = pair_energies(
            tiny_receptor.coords @ rot.T + shift, tiny_receptor.radii,
            tiny_receptor.epsilons, tiny_receptor.charges,
            lig_coords @ rot.T + shift, tiny_ligand.radii,
            tiny_ligand.epsilons, tiny_ligand.charges,
        )
        np.testing.assert_allclose(e0, e1, rtol=1e-9)

    def test_chunking_invariance(self, tiny_receptor):
        # A ligand larger than the chunk size must give the same energy as
        # the direct sum of two half-ligands.
        big = synthesize_protein("BIG", 600, stream(5, "big"))
        t = np.array([tiny_receptor.bounding_radius + big.bounding_radius + 4, 0, 0])
        coords = big.transformed(np.eye(3), t)
        full = pair_energies(
            tiny_receptor.coords, tiny_receptor.radii, tiny_receptor.epsilons,
            tiny_receptor.charges, coords, big.radii, big.epsilons, big.charges,
        )
        half = 300
        parts = [
            pair_energies(
                tiny_receptor.coords, tiny_receptor.radii, tiny_receptor.epsilons,
                tiny_receptor.charges, coords[sl], big.radii[sl],
                big.epsilons[sl], big.charges[sl],
            )
            for sl in (slice(0, half), slice(half, None))
        ]
        np.testing.assert_allclose(
            full, (parts[0][0] + parts[1][0], parts[0][1] + parts[1][1]), rtol=1e-12
        )

    def test_shape_validation(self, tiny_receptor, tiny_ligand):
        with pytest.raises(ValueError):
            pair_energies(
                tiny_receptor.coords[:, :2], tiny_receptor.radii,
                tiny_receptor.epsilons, tiny_receptor.charges,
                tiny_ligand.coords, tiny_ligand.radii,
                tiny_ligand.epsilons, tiny_ligand.charges,
            )


class TestBeadGradient:
    def test_matches_finite_differences(self, tiny_receptor, tiny_ligand):
        t = np.array([_sep(tiny_receptor, tiny_ligand, 1.0), 2.0, -1.0])
        coords = tiny_ligand.transformed(np.eye(3), t)
        energy, grad = energy_and_bead_gradient(tiny_receptor, tiny_ligand, coords)
        h = 1e-6
        for j in (0, tiny_ligand.n_beads // 2, tiny_ligand.n_beads - 1):
            for axis in range(3):
                plus = coords.copy()
                plus[j, axis] += h
                minus = coords.copy()
                minus[j, axis] -= h
                ep = sum(_energy_of(tiny_receptor, tiny_ligand, plus))
                em = sum(_energy_of(tiny_receptor, tiny_ligand, minus))
                num = (ep - em) / (2 * h)
                assert grad[j, axis] == pytest.approx(num, rel=1e-4, abs=1e-7)

    def test_energy_consistent_with_pair_energies(self, tiny_receptor, tiny_ligand):
        t = np.array([_sep(tiny_receptor, tiny_ligand), 0.0, 0.0])
        coords = tiny_ligand.transformed(np.eye(3), t)
        total, _ = energy_and_bead_gradient(tiny_receptor, tiny_ligand, coords)
        lj, el = _energy_of(tiny_receptor, tiny_ligand, coords)
        assert total == pytest.approx(lj + el, rel=1e-12)

    @settings(max_examples=10, deadline=None)
    @given(st.floats(min_value=-5.0, max_value=15.0))
    def test_gradient_finite_everywhere(self, tiny_receptor, tiny_ligand, offset):
        t = np.array([_sep(tiny_receptor, tiny_ligand, 0.0) + offset, 0.0, 0.0])
        coords = tiny_ligand.transformed(np.eye(3), t)
        energy, grad = energy_and_bead_gradient(tiny_receptor, tiny_ligand, coords)
        assert np.isfinite(energy)
        assert np.isfinite(grad).all()


def _energy_of(receptor, ligand, coords):
    return pair_energies(
        receptor.coords, receptor.radii, receptor.epsilons, receptor.charges,
        coords, ligand.radii, ligand.epsilons, ligand.charges,
    )
