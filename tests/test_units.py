"""Tests for repro.units: the paper's y:d:h:m:s notation and helpers."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units


class TestYDHMS:
    def test_paper_phase1_total_roundtrip(self):
        # The headline figure of Section 4.1.
        text = "1,488:237:19:45:54"
        seconds = units.parse_ydhms(text)
        assert str(units.seconds_to_ydhms(seconds)) == text

    def test_paper_wcg_total_roundtrip(self):
        text = "8,082:275:17:15:44"
        seconds = units.parse_ydhms(text)
        assert str(units.seconds_to_ydhms(seconds)) == text

    def test_zero(self):
        d = units.seconds_to_ydhms(0)
        assert (d.years, d.days, d.hours, d.minutes, d.seconds) == (0, 0, 0, 0, 0)

    def test_one_year_boundary(self):
        d = units.seconds_to_ydhms(units.SECONDS_PER_YEAR)
        assert (d.years, d.days) == (1, 0)

    def test_truncates_fractional_seconds(self):
        assert units.seconds_to_ydhms(1.999).seconds == 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            units.seconds_to_ydhms(-1)

    def test_parse_rejects_wrong_field_count(self):
        with pytest.raises(ValueError):
            units.parse_ydhms("1:2:3:4")

    def test_parse_rejects_out_of_range_fields(self):
        with pytest.raises(ValueError):
            units.parse_ydhms("1:366:00:00:00")
        with pytest.raises(ValueError):
            units.parse_ydhms("1:000:24:00:00")
        with pytest.raises(ValueError):
            units.parse_ydhms("1:000:00:60:00")
        with pytest.raises(ValueError):
            units.parse_ydhms("1:000:00:00:60")

    @given(st.integers(min_value=0, max_value=10**13))
    def test_roundtrip_property(self, seconds):
        assert units.seconds_to_ydhms(seconds).to_seconds() == seconds

    @given(st.integers(min_value=0, max_value=10**13))
    def test_parse_format_roundtrip_property(self, seconds):
        text = str(units.seconds_to_ydhms(seconds))
        assert units.parse_ydhms(text) == seconds


class TestConversions:
    def test_hours(self):
        assert units.hours(2) == 7200

    def test_days(self):
        assert units.days(1) == 86_400

    def test_weeks(self):
        assert units.weeks(1) == 7 * 86_400

    def test_years(self):
        assert units.years(1) == 365 * 86_400

    def test_vftp_definition_anchor(self):
        # "10 years of cpu time for 1 day" = 3650 processors (Section 3.1).
        assert units.years(10) / units.days(1) == 3650


class TestFormatDuration:
    @pytest.mark.parametrize(
        "seconds,expected",
        [
            (30, "30 s"),
            (90, "1.5 min"),
            (7200, "2 h"),
            (2 * 86_400, "2 d"),
            (2 * units.SECONDS_PER_YEAR, "2 y"),
        ],
    )
    def test_unit_selection(self, seconds, expected):
        assert units.format_duration(seconds) == expected

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            units.format_duration(-5)


class TestFormatBytes:
    @pytest.mark.parametrize(
        "n,expected",
        [
            (0, "0 B"),
            (512, "512 B"),
            (2048, "2 KiB"),
            (123 * 1024**3, "123 GiB"),
        ],
    )
    def test_values(self, n, expected):
        assert units.format_bytes(n) == expected

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            units.format_bytes(-1)
