"""Tests for repro.proteins.model: reduced-protein synthesis."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.proteins.model import (
    MIN_BEAD_SEPARATION_A,
    ReducedProtein,
    synthesize_protein,
)
from repro.rng import stream


def _protein(n=25, seed=3):
    return synthesize_protein("P", n, stream(seed, "test-protein"))


class TestSynthesis:
    def test_bead_count(self):
        assert _protein(25).n_beads == 25

    def test_deterministic(self):
        a = synthesize_protein("P", 25, stream(3, "x"))
        b = synthesize_protein("P", 25, stream(3, "x"))
        np.testing.assert_array_equal(a.coords, b.coords)
        np.testing.assert_array_equal(a.charges, b.charges)

    def test_centered(self):
        p = _protein()
        np.testing.assert_allclose(p.coords.mean(axis=0), 0.0, atol=1e-9)

    def test_minimum_bead_separation(self):
        p = _protein(60)
        delta = p.coords[:, None, :] - p.coords[None, :, :]
        dist = np.sqrt((delta**2).sum(axis=2))
        np.fill_diagonal(dist, np.inf)
        assert dist.min() >= MIN_BEAD_SEPARATION_A - 1e-9

    def test_net_charge_zero(self):
        p = _protein(50)
        assert abs(p.charges.sum()) < 1e-9

    def test_some_charges_nonzero(self):
        p = _protein(50)
        assert (np.abs(p.charges) > 1e-6).sum() >= 2

    def test_too_few_beads_rejected(self):
        with pytest.raises(ValueError):
            _protein(3)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=4, max_value=80))
    def test_size_scaling_property(self, n):
        p = synthesize_protein("P", n, stream(11, "prop"))
        assert p.n_beads == n
        # Compact globule: radius grows sub-linearly with bead count.
        assert p.bounding_radius < 6.0 * n ** (1 / 3) + 8.0


class TestReducedProtein:
    def test_immutable_arrays(self):
        p = _protein()
        with pytest.raises(ValueError):
            p.coords[0, 0] = 1.0

    def test_bounding_radius_covers_all_beads(self):
        p = _protein(40)
        extents = np.linalg.norm(p.coords, axis=1) + p.radii
        assert p.bounding_radius >= extents.max() - 1e-9

    def test_radius_of_gyration_positive_and_below_bounding(self):
        p = _protein(40)
        assert 0 < p.radius_of_gyration < p.bounding_radius

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            ReducedProtein(
                name="bad",
                coords=np.zeros((4, 2)),
                radii=np.ones(4),
                epsilons=np.ones(4),
                charges=np.zeros(4),
            )

    def test_per_bead_array_validation(self):
        with pytest.raises(ValueError):
            ReducedProtein(
                name="bad",
                coords=np.zeros((4, 3)),
                radii=np.ones(3),
                epsilons=np.ones(4),
                charges=np.zeros(4),
            )


class TestTransformed:
    def test_identity(self):
        p = _protein()
        out = p.transformed(np.eye(3), np.zeros(3))
        np.testing.assert_allclose(out, p.coords)

    def test_translation(self):
        p = _protein()
        t = np.array([1.0, -2.0, 3.0])
        out = p.transformed(np.eye(3), t)
        np.testing.assert_allclose(out, p.coords + t)

    def test_rotation_preserves_distances(self):
        p = _protein()
        theta = 0.7
        rot = np.array(
            [
                [np.cos(theta), -np.sin(theta), 0],
                [np.sin(theta), np.cos(theta), 0],
                [0, 0, 1],
            ]
        )
        out = p.transformed(rot, np.zeros(3))
        np.testing.assert_allclose(
            np.linalg.norm(out, axis=1), np.linalg.norm(p.coords, axis=1)
        )

    def test_does_not_mutate(self):
        p = _protein()
        before = p.coords.copy()
        p.transformed(np.eye(3), np.ones(3))
        np.testing.assert_array_equal(p.coords, before)

    def test_bad_shapes_rejected(self):
        p = _protein()
        with pytest.raises(ValueError):
            p.transformed(np.eye(2), np.zeros(3))
        with pytest.raises(ValueError):
            p.transformed(np.eye(3), np.zeros(2))
