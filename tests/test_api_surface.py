"""Pin the public façade.

``repro.__all__`` and the signatures of the campaign-first entry points
are compatibility surface: other code (and the docs) import against
them.  A rename or reorder must show up here as a deliberate diff, not
as silent drift.
"""

from __future__ import annotations

import dataclasses
import inspect

import pytest

import repro

EXPECTED_ALL = [
    "constants",
    "units",
    "CampaignPlan",
    "calibration_experiment",
    "estimate_total_work",
    "CampaignMetrics",
    "virtual_full_time_processors",
    "PackagingPolicy",
    "WorkUnitPlan",
    "project_phase2",
    "WorkUnit",
    "FaultPlan",
    "FluidCampaign",
    "WCGPopulationModel",
    "hcmd_share_schedule",
    "CostModel",
    "MaxDoRun",
    "dock_couple",
    "MetricsRegistry",
    "Profiler",
    "Tracer",
    "ProteinLibrary",
    "ColumnarSegment",
    "ResultStore",
    "read_store",
    "store_to_text",
    "text_to_store",
    "write_store",
    "CampaignConfig",
    "ShardPlan",
    "scaled_phase1",
    "Campaign",
    "GridConfig",
    "MultiGridSimulation",
    "__version__",
]


def test_all_is_pinned_exactly():
    assert list(repro.__all__) == EXPECTED_ALL


def test_every_exported_name_resolves():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name


def test_campaign_constructor_signatures():
    cross = inspect.signature(repro.Campaign.cross_docking)
    assert list(cross.parameters) == [
        "name", "scale", "n_proteins", "target_hours", "release_policy",
        "kwargs",
    ]
    assert cross.parameters["scale"].default == 200.0
    assert cross.parameters["n_proteins"].default == 24
    screening = inspect.signature(repro.Campaign.screening)
    assert list(screening.parameters) == [
        "name", "n_ligands", "mean_hours", "sigma", "batch_size", "kwargs",
    ]


def test_campaign_fields():
    assert [f.name for f in dataclasses.fields(repro.Campaign)] == [
        "name", "workload", "weight", "priority", "quota_fraction",
        "submit_week", "drain_week", "weight_schedule", "server",
    ]


def test_grid_config_fields():
    assert [f.name for f in dataclasses.fields(repro.GridConfig)] == [
        "campaigns", "policy", "seed", "horizon_weeks", "n_hosts_peak",
        "share_schedule", "population", "host_model", "accounting",
        "faults",
    ]


def test_campaign_config_fields():
    assert [f.name for f in dataclasses.fields(repro.CampaignConfig)] == [
        "packaging", "server", "faults", "host_model", "share_schedule",
        "population", "n_hosts_peak", "horizon_weeks", "scale", "seed",
        "accounting", "release_policy", "shards",
    ]


def test_scaled_phase1_signature():
    sig = inspect.signature(repro.scaled_phase1)
    assert list(sig.parameters) == [
        "scale", "n_proteins", "seed", "target_hours", "horizon_weeks",
        "config", "tracer", "profiler", "health", "ledger", "kwargs",
    ]
    assert sig.parameters["scale"].default == 200.0
    assert sig.parameters["n_proteins"].default == 24


def test_multi_grid_simulation_signature():
    sig = inspect.signature(repro.MultiGridSimulation)
    assert list(sig.parameters) == [
        "config", "tracer", "profiler", "force_router",
    ]


def test_facade_adapters_share_the_workload_layer():
    """scaled_phase1 and Campaign.cross_docking materialize the same
    library/cost model — the façade contract behind bit-identity."""
    from repro.multi.workloads import CrossDockingWorkload

    workload = CrossDockingWorkload(scale=900.0, n_proteins=5)
    library, costs = workload.library_and_costs(seed=42)
    import numpy as np

    sim = repro.scaled_phase1(scale=900, n_proteins=5, seed=42)
    np.testing.assert_array_equal(sim.library.nsep, library.nsep)
    assert sim.library.names == library.names


def test_from_kwargs_is_the_deprecation_funnel():
    with pytest.warns(DeprecationWarning, match="docs/usage.md"):
        repro.CampaignConfig.from_kwargs(seed=3)
