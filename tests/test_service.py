"""The live scheduler service: wire protocol, backpressure, replay.

Covers the :mod:`repro.service` stack end to end on real sockets:
protocol marshalling, the endpoint surface, refusal semantics (outage /
overload / draining, each with Retry-After), bounded-queue overload
behaviour, graceful drain mid-campaign, and the deterministic-replay
contract — a wire-driven campaign must reconcile exactly with the
in-process run (same validated counts, same ``ValidationStats``).
"""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro import CampaignConfig, FaultPlan
from repro.boinc.simulator import scaled_phase1
from repro.boinc.validator import ValidationStats
from repro.obs import RingSink, Tracer
from repro.service import (
    ENDPOINTS,
    RemoteGridServer,
    SchedulerClient,
    ServiceConfig,
    ServiceRefused,
    replay_campaign,
    serve_in_thread,
    storm,
)
from repro.service.app import ROUTES, _WRITER_OPS
from repro.service.protocol import (
    refusal_payload,
    stats_as_dict,
    stats_from_dict,
)


def tiny_campaign(seed: int = 11, faults: str | None = None, horizon: float = 30.0):
    """A seconds-fast campaign (~26 workunits, 4 hosts)."""
    config = CampaignConfig(
        faults=FaultPlan.from_spec(faults) if faults else FaultPlan.none()
    )
    return scaled_phase1(
        scale=900.0, n_proteins=5, seed=seed,
        horizon_weeks=horizon, config=config,
    )


@pytest.fixture
def service():
    handle = serve_in_thread(tiny_campaign())
    try:
        yield handle
    finally:
        handle.stop()


# -- protocol ----------------------------------------------------------------


class TestProtocol:
    def test_routes_cover_endpoints_exactly(self):
        assert set(ROUTES) == {(m, p) for m, p, _ in ENDPOINTS}

    def test_stats_round_trip_is_lossless(self):
        result = tiny_campaign().run()
        stats = result.server.stats
        assert stats.effective > 0  # a meaningful round-trip, not zeros
        restored = stats_from_dict(stats_as_dict(stats))
        assert restored == stats
        assert restored.validated_by_regime == stats.validated_by_regime

    def test_stats_round_trip_preserves_types(self):
        restored = stats_from_dict(stats_as_dict(ValidationStats()))
        assert isinstance(restored.disclosed, int)
        assert isinstance(restored.consumed_cpu_s, float)

    def test_refusal_payload_rejects_unknown_reason(self):
        with pytest.raises(ValueError, match="unknown refusal reason"):
            refusal_payload("busy", 1.0)

    def test_writer_ops_are_the_mutating_routes(self):
        # Read-only ops must never enter the single-writer queue, and
        # every mutating op must.
        assert _WRITER_OPS == {"request_work", "report_result", "finalize"}


# -- the wire surface --------------------------------------------------------


class TestWireSurface:
    def test_discovery_lists_protocol_and_campaign(self, service):
        client = SchedulerClient(*service.address)
        info = client.discover()
        assert info["service"] == "repro-scheduler"
        assert [(e["method"], e["path"]) for e in info["endpoints"]] == [
            (m, p) for m, p, _ in ENDPOINTS
        ]
        assert info["campaign"]["n_workunits"] == service.service.server.n_workunits
        client.close()

    def test_heartbeat_reports_progress_without_advancing_clock(self, service):
        client = SchedulerClient(*service.address)
        before = service.service.sim.now
        beat = client.heartbeat(host=7, t=1e9)
        assert beat["ok"] and not beat["all_done"]
        assert beat["n_validated"] == 0
        assert service.service.sim.now == before
        client.close()

    def test_request_report_cycle(self, service):
        client = SchedulerClient(*service.address)
        response = client.request_work(host=0, t=10.0)
        assignment = response["assignment"]
        assert assignment is not None
        assert assignment["copy"] == 0
        assert assignment["cost_reference_s"] > 0
        client.report_result(
            assignment["token"], valid=True,
            accounted_cpu_s=assignment["cost_reference_s"], t=5000.0,
        )
        status = client.status()
        assert status["stats"]["disclosed"] == 1
        assert status["now_s"] == 5000.0
        client.close()

    def test_error_statuses(self, service):
        import http.client
        import json

        client = SchedulerClient(*service.address)
        # unknown endpoint -> 404
        status, _ = client._call("GET", "/nope")
        assert status == 404
        # missing required field -> 400
        status, payload = client._call("POST", "/v1/request-work", {})
        assert status == 400 and payload["error"] == "bad-request"
        # unknown token -> 410
        status, payload = client._call(
            "POST", "/v1/report-result",
            {"token": 999, "valid": True, "accounted_cpu_s": 1.0},
        )
        assert status == 410 and payload["error"] == "unknown-token"
        # malformed JSON -> 400
        conn = http.client.HTTPConnection(*service.address)
        conn.request("POST", "/v1/heartbeat", body=b"{not json",
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        assert response.status == 400
        assert json.loads(response.read())["error"] == "bad-request"
        conn.close()
        client.close()

    def test_stale_timestamps_clamp_not_crash(self, service):
        client = SchedulerClient(*service.address)
        client.request_work(host=0, t=5000.0)
        # an out-of-order (earlier) mutation still answers; the clock
        # never goes backwards
        response = client.request_work(host=1, t=10.0)
        assert response["assignment"] is not None
        assert service.service.sim.now == 5000.0
        assert service.service.clock_clamps == 1
        client.close()

    def test_campaign_mismatch_is_rejected(self, service):
        client = SchedulerClient(*service.address)
        other = tiny_campaign(seed=99)
        with pytest.raises(ValueError, match="does not match the served"):
            RemoteGridServer(
                client,
                sim=None,
                workunits=other.materialize_workunits()[:-2],
                config=other.server_config,
            )
        client.close()


# -- deterministic replay ----------------------------------------------------


class TestReplayReconciliation:
    def test_fault_free_replay_matches_in_process_exactly(self):
        reference = tiny_campaign().run()
        handle = serve_in_thread(tiny_campaign())
        try:
            wire = replay_campaign(tiny_campaign(), handle.url)
        finally:
            handle.stop()
        assert wire.server.stats == reference.server.stats
        assert wire.completion_time == reference.completion_time
        assert wire.server.batch_completion == reference.server.batch_completion
        assert wire.server.stats.effective == reference.server.stats.effective
        assert wire.server.all_done
        # the CampaignResult surface works off the wire proxy too
        assert wire.metrics().redundancy == reference.metrics().redundancy

    def test_faulted_replay_matches_and_surfaces_refusals(self):
        spec = "crash=5,corrupt=0.05,sabotage=0.1,loss=0.05,outage=8x24,maxreissue=8"
        make = lambda: tiny_campaign(seed=5, faults=spec, horizon=9.0)
        reference = make().run()
        handle = serve_in_thread(make())
        try:
            wire = replay_campaign(make(), handle.url)
            status_refused = dict(handle.service.refused)
        finally:
            handle.stop()
        assert wire.server.stats == reference.server.stats
        assert wire.completion_time == reference.completion_time
        # outage windows actually refused RPCs over the wire...
        assert reference.server.stats.refused_rpcs > 0
        assert status_refused["outage"] == reference.server.stats.refused_rpcs
        # ...and the error budget reports them on both sides (the
        # FaultReport refusal counter sources from ValidationStats).
        assert (
            wire.fault_report().injected["refused_rpcs"]
            == reference.fault_report().injected["refused_rpcs"]
            == reference.server.stats.refused_rpcs
        )

    def test_replay_via_url_string_and_loadgen_cli(self, capsys):
        from repro.cli import main

        handle = serve_in_thread(tiny_campaign())
        try:
            code = main([
                "--seed", "11", "loadgen", handle.url,
                "--scale", "900", "--proteins", "5", "--horizon-weeks", "30",
                "--reconcile",
            ])
        finally:
            handle.stop()
        out = capsys.readouterr().out
        assert code == 0
        assert "reconcile vs in-process run: MATCH" in out


# -- backpressure and overload ----------------------------------------------


class TestOverload:
    def test_burst_overload_refuses_but_answers_everything(self):
        tracer = Tracer(sink=RingSink(capacity=100_000), channels=("service",))
        handle = serve_in_thread(
            tiny_campaign(),
            config=ServiceConfig(max_pending=2, writer_delay_s=0.01),
            tracer=tracer,
        )
        try:
            report = storm(
                handle.url, n_hosts=40, connections=8,
                report_results=False, t_step_s=0.0,
            )
            service = handle.service
            status = SchedulerClient(*handle.address).status()
        finally:
            handle.stop()
        # every request got an answer: 200 or an explicit 503, never a drop
        assert report.dropped == 0
        assert report.answered == report.sent
        assert report.refused["overload"] > 0
        assert report.ok + report.refused_total + report.errors == report.answered
        assert report.errors == 0
        # the queue stayed bounded and the refusals are visible over HTTP
        assert service.max_queue_depth <= 2
        assert status["refused"]["overload"] == report.refused["overload"]
        assert status["max_queue_depth"] <= 2
        # ...and as service.refuse events
        assert tracer.counts["service.refuse"] == report.refused["overload"]
        assert tracer.counts["service.listen"] == 1
        # the storm carries home the service's own per-op latency sketches
        sketches = report.service_rpc_wall_s
        assert sketches["request_work"]["count"] > 0
        assert "estimates" in sketches["request_work"]
        assert report.as_dict()["service_rpc_wall_s"] == sketches

    def test_slow_writer_queue_depth_stays_bounded(self):
        handle = serve_in_thread(
            tiny_campaign(),
            config=ServiceConfig(max_pending=4, writer_delay_s=0.02),
        )
        clients = [SchedulerClient(*handle.address) for _ in range(12)]
        refused = 0
        answered = 0
        lock = threading.Lock()

        def hammer(client: SchedulerClient, host: int) -> None:
            nonlocal refused, answered
            for i in range(4):
                try:
                    client.request_work(host=host, t=float(i))
                    with lock:
                        answered += 1
                except ServiceRefused as exc:
                    assert exc.reason == "overload"
                    assert exc.retry_after_s > 0
                    with lock:
                        refused += 1

        threads = [
            threading.Thread(target=hammer, args=(c, i))
            for i, c in enumerate(clients)
        ]
        try:
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            depth = handle.service.max_queue_depth
        finally:
            for c in clients:
                c.close()
            handle.stop()
        assert answered + refused == 12 * 4  # nothing lost
        assert depth <= 4

    def test_graceful_drain_mid_campaign(self):
        tracer = Tracer(sink=RingSink(capacity=1000), channels=("service",))
        handle = serve_in_thread(
            tiny_campaign(),
            config=ServiceConfig(max_pending=8, writer_delay_s=0.1),
            tracer=tracer,
        )
        clients = [SchedulerClient(*handle.address) for _ in range(3)]
        results: list[dict] = []

        def request(client: SchedulerClient, host: int) -> None:
            results.append(client.request_work(host=host, t=100.0))

        threads = [
            threading.Thread(target=request, args=(c, i))
            for i, c in enumerate(clients)
        ]
        try:
            for t in threads:
                t.start()
            time.sleep(0.05)  # the requests are in flight / queued
            asyncio.run_coroutine_threadsafe(
                handle.service.drain(), handle.loop
            ).result(timeout=30)
            for t in threads:
                t.join()
            # every in-flight mutation completed (graceful, not dropped)...
            assert len(results) == 3
            assert sum(r["assignment"] is not None for r in results) == 3
            # ...new mutations are refused with reason=draining...
            with pytest.raises(ServiceRefused) as exc_info:
                clients[0].request_work(host=9, t=200.0)
            assert exc_info.value.reason == "draining"
            # ...but read-only endpoints still answer
            status = clients[0].status()
            assert status["draining"] is True
            assert status["stats"]["disclosed"] == 0  # mid-campaign: no report yet
            assert not status["all_done"]
            assert status["refused"]["draining"] == 1
            assert tracer.counts["service.drain"] == 2  # begin + end
        finally:
            for c in clients:
                c.close()
            handle.stop()

    def test_rpc_latency_sketches_populate(self, service):
        client = SchedulerClient(*service.address)
        for _ in range(8):
            client.heartbeat(host=1)
        client.request_work(host=0, t=1.0)
        status = client.status()
        sketches = status["rpc_wall_s"]
        assert sketches["heartbeat"]["count"] == 8
        assert sketches["request_work"]["count"] == 1
        assert 0.0 <= sketches["heartbeat"]["estimates"]["p50"] < 1.0
        # the sketch rides the standard registry export too
        assert "service.rpc_wall_s.heartbeat" in service.service.metrics
        client.close()
