"""Shared fixtures.

Expensive calibrated objects (the phase-1 library, cost models) are
session-scoped; tests must treat them as read-only.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.maxdo.cost_model import CostModel
from repro.proteins.library import ProteinLibrary
from repro.proteins.model import synthesize_protein
from repro.rng import stream


@pytest.fixture(scope="session")
def phase1_library() -> ProteinLibrary:
    """The full calibrated 168-protein library (read-only)."""
    return ProteinLibrary.phase1()


@pytest.fixture(scope="session")
def phase1_cost_model(phase1_library) -> CostModel:
    """The calibrated 168x168 cost matrix (read-only)."""
    return CostModel.calibrated(phase1_library)


@pytest.fixture(scope="session")
def small_library() -> ProteinLibrary:
    """A 12-protein library with phase-1 per-protein statistics."""
    return ProteinLibrary.synthetic(n_proteins=12, seed=42)


@pytest.fixture(scope="session")
def small_cost_model(small_library) -> CostModel:
    return CostModel.calibrated(small_library)


@pytest.fixture(scope="session")
def tiny_receptor():
    """A small receptor protein for docking-engine tests."""
    return synthesize_protein("REC", 30, stream(7, "tiny-receptor"))


@pytest.fixture(scope="session")
def tiny_ligand():
    """A small ligand protein for docking-engine tests."""
    return synthesize_protein("LIG", 20, stream(7, "tiny-ligand"))


@pytest.fixture()
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)
