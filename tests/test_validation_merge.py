"""At-scale tests of the text merge path and its error reporting.

``merge_couple_results`` is the server-side step that turns a couple's
chunked workunit uploads into the one-file-per-couple dataset; a phase-I
couple arrives in dozens of chunks, so these tests exercise the tiling
validation at that scale and pin the contract that every gap / overlap /
duplicate-chunk failure names the offending upload file.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.maxdo.resultfile import (
    RESULT_DTYPE,
    ResultHeader,
    read_results,
    write_results,
)
from repro.rng import stream
from repro.store import render_lines, segment_from_text, merge_segments
from repro.validation.merge import merge_couple_results

N_ROT = 4
N_GAMMA = 6


def _chunk_records(rng, isep_start, nsep):
    n = nsep * N_ROT
    rec = np.zeros(n, dtype=RESULT_DTYPE)
    rec["isep"] = np.repeat(np.arange(isep_start, isep_start + nsep), N_ROT)
    rec["irot"] = np.tile(np.arange(1, N_ROT + 1), nsep)
    rec["igamma"] = rng.integers(1, N_GAMMA + 1, size=n)
    for f in ("x", "y", "z"):
        rec[f] = np.round(rng.normal(0.0, 40.0, n), 3)
    for f in ("alpha", "beta", "gamma"):
        rec[f] = np.round(rng.uniform(0.0, 6.2831, n), 4)
    rec["e_lj"] = np.round(rng.normal(-30.0, 12.0, n), 4)
    rec["e_elec"] = np.round(rng.normal(-8.0, 4.0, n), 4)
    rec["e_tot"] = np.round(rec["e_lj"] + rec["e_elec"], 4)
    return rec


def _write_chunk(path, rec, receptor="P001", ligand="P002"):
    header = ResultHeader(
        receptor=receptor, ligand=ligand,
        isep_start=int(rec["isep"].min()),
        nsep=int(rec["isep"].max() - rec["isep"].min() + 1),
        n_couples=N_ROT, n_gamma=N_GAMMA,
    )
    write_results(path, header, render_lines(rec))
    return path


@pytest.fixture
def chunk_dir(tmp_path):
    """64 chunks of one couple, nsep=3 each, written in shuffled order."""
    rng = stream(21, "merge-scale")
    paths = []
    for k in range(64):
        rec = _chunk_records(rng, isep_start=1 + 3 * k, nsep=3)
        paths.append(_write_chunk(tmp_path / f"chunk_{k:03d}.result", rec))
    shuffled = [paths[i] for i in rng.permutation(len(paths))]
    return tmp_path, paths, shuffled


class TestMergeAtScale:
    def test_merges_64_shuffled_chunks(self, chunk_dir):
        tmp_path, paths, shuffled = chunk_dir
        out = tmp_path / "merged.result"
        n = merge_couple_results(shuffled, out)
        assert n == 64 * 3 * N_ROT
        table = read_results(out)
        assert table.header.isep_start == 1
        assert table.header.nsep == 192
        rec = table.records
        # Globally sorted by (isep, irot, igamma).
        keys = np.lexsort((rec["igamma"], rec["irot"], rec["isep"]))
        assert np.array_equal(keys, np.arange(len(rec)))

    def test_order_independent(self, chunk_dir):
        tmp_path, paths, shuffled = chunk_dir
        a, b = tmp_path / "a.result", tmp_path / "b.result"
        merge_couple_results(paths, a)
        merge_couple_results(shuffled, b)
        assert a.read_bytes() == b.read_bytes()

    def test_matches_columnar_merge(self, chunk_dir):
        tmp_path, paths, shuffled = chunk_dir
        out = tmp_path / "merged.result"
        merge_couple_results(shuffled, out)
        merged = merge_segments([segment_from_text(p) for p in shuffled])
        twin = tmp_path / "twin.result"
        from repro.store import segment_to_text

        segment_to_text(merged, twin)
        assert twin.read_bytes() == out.read_bytes()


class TestMergeErrorsNameTheChunk:
    def test_gap_names_first_chunk_after_the_hole(self, chunk_dir):
        tmp_path, paths, _ = chunk_dir
        missing = paths[:17] + paths[18:]  # drop chunk 17 (isep 52..54)
        with pytest.raises(ValueError) as err:
            merge_couple_results(missing, tmp_path / "out.result")
        assert "gap at 55 (expected 52)" in str(err.value)
        assert "chunk_018.result" in str(err.value)

    def test_overlap_names_the_overlapping_chunk(self, chunk_dir):
        tmp_path, paths, _ = chunk_dir
        rng = stream(22, "merge-overlap")
        # A chunk whose slice starts inside chunk 5's (isep 16..18).
        rec = _chunk_records(rng, isep_start=17, nsep=3)
        bad = _write_chunk(tmp_path / "straddler.result", rec)
        with pytest.raises(ValueError) as err:
            merge_couple_results(paths + [bad], tmp_path / "out.result")
        assert "overlap at 17" in str(err.value)
        assert "straddler.result" in str(err.value)

    def test_duplicate_chunk_named(self, chunk_dir):
        tmp_path, paths, _ = chunk_dir
        dup = tmp_path / "resent_upload.result"
        dup.write_bytes(paths[3].read_bytes())  # chunk 3 uploaded twice
        with pytest.raises(ValueError) as err:
            merge_couple_results(paths + [dup], tmp_path / "out.result")
        # The duplicate slice [10..12] collides; the error carries the
        # colliding file's name (sorted ties break on the name).
        assert "overlap at 10 (expected 13)" in str(err.value)
        assert "resent_upload.result" in str(err.value)

    def test_couple_mismatch_names_both_files(self, chunk_dir):
        tmp_path, paths, _ = chunk_dir
        rng = stream(23, "merge-foreign")
        rec = _chunk_records(rng, isep_start=193, nsep=3)
        foreign = _write_chunk(
            tmp_path / "foreign.result", rec, ligand="P099"
        )
        with pytest.raises(ValueError) as err:
            merge_couple_results(paths + [foreign], tmp_path / "out.result")
        msg = str(err.value)
        assert "P001-P099" in msg and "foreign.result" in msg
        assert "chunk_000.result" in msg

    def test_empty_input_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="nothing to merge"):
            merge_couple_results([], tmp_path / "out.result")
