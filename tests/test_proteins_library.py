"""Tests for repro.proteins.library: the calibrated protein set (Figure 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import constants as C
from repro.proteins.library import ProteinLibrary
from repro.proteins.surface import geometric_nsep


class TestPhase1Calibration:
    def test_size(self, phase1_library):
        assert len(phase1_library) == 168

    def test_sum_nsep_exact(self, phase1_library):
        # Pins the paper's 49,481,544 maximum workunit count.
        assert int(phase1_library.nsep.sum()) == C.SUM_NSEP

    def test_total_max_workunits(self, phase1_library):
        assert phase1_library.total_max_workunits == C.TOTAL_MAX_WORKUNITS

    def test_figure2_most_below_3000(self, phase1_library):
        assert (phase1_library.nsep < 3000).mean() > 0.75

    def test_figure2_one_above_8000(self, phase1_library):
        assert phase1_library.nsep.max() > 8000

    def test_all_positive(self, phase1_library):
        assert phase1_library.nsep.min() >= 1

    def test_deterministic(self, phase1_library):
        again = ProteinLibrary.phase1()
        np.testing.assert_array_equal(again.nsep, phase1_library.nsep)
        np.testing.assert_array_equal(
            again.residue_counts, phase1_library.residue_counts
        )

    def test_different_seed_differs(self, phase1_library):
        other = ProteinLibrary.phase1(seed=1234)
        assert not np.array_equal(other.nsep, phase1_library.nsep)
        # ... but the calibration targets still hold.
        assert int(other.nsep.sum()) == C.SUM_NSEP

    def test_names_unique(self, phase1_library):
        assert len(set(phase1_library.names)) == 168

    def test_nsep_not_sorted_by_index(self, phase1_library):
        # The shuffle must decouple protein id from size.
        assert not np.all(np.diff(phase1_library.nsep) >= 0)


class TestSyntheticLibraries:
    def test_small_library_scales_sum(self):
        lib = ProteinLibrary.synthetic(n_proteins=12, seed=1)
        expected = round(C.SUM_NSEP * 12 / 168)
        assert int(lib.nsep.sum()) == expected

    def test_explicit_sum(self):
        lib = ProteinLibrary.synthetic(n_proteins=5, sum_nsep=1000, seed=1)
        assert int(lib.nsep.sum()) == 1000

    def test_single_protein(self):
        lib = ProteinLibrary.synthetic(n_proteins=1, sum_nsep=50, seed=1)
        assert lib.nsep.tolist() == [50]

    def test_rejects_zero_proteins(self):
        with pytest.raises(ValueError):
            ProteinLibrary.synthetic(n_proteins=0)

    def test_rejects_undersized_sum(self):
        with pytest.raises(ValueError):
            ProteinLibrary.synthetic(n_proteins=10, sum_nsep=5)


class TestAccess:
    def test_index_of(self, small_library):
        assert small_library.index_of(small_library.names[3]) == 3

    def test_index_of_missing(self, small_library):
        with pytest.raises(KeyError):
            small_library.index_of("NOPE")

    def test_protein_lazy_and_cached(self, small_library):
        p1 = small_library.protein(0)
        p2 = small_library.protein(0)
        assert p1 is p2

    def test_protein_matches_residue_count(self, small_library):
        i = int(np.argmin(small_library.residue_counts))
        p = small_library.protein(i)
        assert p.n_beads == small_library.residue_counts[i]

    def test_protein_out_of_range(self, small_library):
        with pytest.raises(IndexError):
            small_library.protein(len(small_library))

    def test_couples_cover_square(self, small_library):
        couples = list(small_library.couples())
        n = len(small_library)
        assert len(couples) == n * n == small_library.n_couples
        assert (0, 0) in couples  # self-docking is part of the matrix
        assert len(set(couples)) == n * n

    def test_size_scale_unit_mean(self, small_library):
        assert small_library.size_scale().mean() == pytest.approx(1.0)


class TestGeometricConsistency:
    def test_stored_nsep_tracks_geometry(self, small_library):
        # The geometric model on synthesized beads should agree with the
        # authoritative Nsep within the envelope approximation (~35%).
        i = int(np.argmin(small_library.residue_counts))
        p = small_library.protein(i)
        geo = geometric_nsep(p, small_library.spacing)
        stored = int(small_library.nsep[i])
        assert 0.6 < geo / stored < 1.6
