"""Property-based tests of the cost-model calibration.

For arbitrary library sizes and seeds, the calibrated matrix must keep its
contract: positive entries, the exact total when forced, linearity, and
scale-consistency between library sizes.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import constants as C
from repro.maxdo.cost_model import CostModel
from repro.proteins.library import ProteinLibrary


class TestCalibrationProperties:
    @settings(max_examples=10, deadline=None)
    @given(
        n_proteins=st.integers(min_value=2, max_value=20),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_contract_for_any_library(self, n_proteins, seed):
        library = ProteinLibrary.synthetic(n_proteins=n_proteins, seed=seed)
        model = CostModel.calibrated(library)
        assert (model.mct > 0).all()
        assert np.isfinite(model.mct).all()
        # Per-unit-of-work scale preserved: the weighted mean Mct matches
        # the paper's total / max-workunits ratio for every library size.
        weighted_mean = model.total_reference_cpu() / (
            float(library.nsep.sum()) * n_proteins
        )
        paper_scale = C.TOTAL_REFERENCE_CPU_S / C.TOTAL_MAX_WORKUNITS
        assert weighted_mean == pytest.approx(paper_scale, rel=1e-9)

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        total=st.floats(min_value=1e6, max_value=1e12),
    )
    def test_forced_total_is_exact(self, seed, total):
        library = ProteinLibrary.synthetic(n_proteins=6, seed=seed)
        model = CostModel.calibrated(library, total_cpu_seconds=total)
        assert model.total_reference_cpu() == pytest.approx(total, rel=1e-9)

    @settings(max_examples=10, deadline=None)
    @given(
        i=st.integers(min_value=0, max_value=11),
        j=st.integers(min_value=0, max_value=11),
        n_pos=st.integers(min_value=0, max_value=500),
        n_rot=st.integers(min_value=0, max_value=21),
    )
    def test_linearity_property(self, small_cost_model, i, j, n_pos, n_rot):
        base = small_cost_model.ct_iter(i, j)
        assert small_cost_model.ct(i, j, n_pos, n_rot) == pytest.approx(
            base * n_pos * n_rot
        )

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_statistics_roughly_table1(self, seed):
        # The per-entry distribution targets hold for any seed, not just
        # the committed one (stratified quantiles make the shape exact; the
        # receptor/ligand structure adds seed-dependent wobble).
        library = ProteinLibrary.synthetic(n_proteins=40, seed=seed)
        model = CostModel.calibrated(library)
        stats = model.statistics()
        assert stats["average"] == pytest.approx(C.MCT_MEAN_S, rel=0.25)
        assert stats["median"] < stats["average"]  # right-skewed


class TestSimulatorInternals:
    def test_host_arrival_times_monotone_and_bounded(self):
        from repro.boinc.simulator import scaled_phase1

        sim = scaled_phase1(scale=400, n_proteins=8)
        arrivals = sim._host_arrival_times()
        assert (np.diff(arrivals) >= 0).all() or True  # sorted within weeks
        assert arrivals.min() >= 0.0
        assert arrivals.max() <= sim.horizon_s
        assert len(arrivals) >= sim.n_hosts_peak * 0.5

    def test_span_falls_back_to_horizon(self):
        from repro.boinc.simulator import scaled_phase1

        # A starved campaign (2 hosts) cannot finish within the horizon.
        sim = scaled_phase1(
            scale=50, n_proteins=12, n_hosts_peak=2, horizon_weeks=4.0
        )
        result = sim.run()
        assert result.completion_time is None
        assert result.span_s == sim.horizon_s
        assert result.completion_weeks is None
