"""Tests for repro.grid.trace_io: trace serialization and statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.grid.availability import AvailabilityTrace, generate_trace
from repro.grid.trace_io import (
    read_trace_csv,
    trace_statistics,
    write_trace_csv,
)

HORIZON = 30 * 86_400.0


def _trace(seed=0):
    return generate_trace(np.random.default_rng(seed), horizon=HORIZON)


class TestRoundtrip:
    def test_exact_roundtrip_to_ms(self, tmp_path):
        trace = _trace()
        path = write_trace_csv(tmp_path / "t.csv", trace)
        back = read_trace_csv(path)
        np.testing.assert_allclose(back.starts, trace.starts, atol=1e-3)
        np.testing.assert_allclose(back.ends, trace.ends, atol=1e-3)
        assert back.horizon == pytest.approx(trace.horizon, abs=1e-3)

    def test_roundtrip_preserves_algebra(self, tmp_path):
        trace = _trace(seed=4)
        back = read_trace_csv(write_trace_csv(tmp_path / "t.csv", trace))
        t = trace.starts[0] + 10.0
        assert back.is_available(t) == trace.is_available(t)
        assert back.total_available == pytest.approx(
            trace.total_available, abs=0.1
        )

    def test_empty_trace(self, tmp_path):
        trace = AvailabilityTrace(np.empty(0), np.empty(0), HORIZON)
        back = read_trace_csv(write_trace_csv(tmp_path / "t.csv", trace))
        assert back.n_intervals() == 0
        assert back.horizon == HORIZON

    def test_missing_horizon_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("start_s,end_s\n0.0,10.0\n")
        with pytest.raises(ValueError, match="horizon"):
            read_trace_csv(path)

    def test_malformed_row_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("# horizon_s 100\nstart_s,end_s\n1,2,3\n")
        with pytest.raises(ValueError, match="malformed"):
            read_trace_csv(path)

    def test_overlapping_intervals_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("# horizon_s 100\nstart_s,end_s\n0,10\n5,20\n")
        with pytest.raises(ValueError):
            read_trace_csv(path)


class TestStatistics:
    def test_known_trace(self):
        trace = AvailabilityTrace(
            starts=np.array([0.0, 7200.0]),
            ends=np.array([3600.0, 10800.0]),
            horizon=86_400.0,
        )
        stats = trace_statistics(trace)
        assert stats.n_sessions == 2
        assert stats.mean_session_s == 3600.0
        assert stats.mean_gap_s == 3600.0
        assert stats.availability == pytest.approx(7200 / 86_400)
        assert stats.interruptions_per_day == 2.0

    def test_empty_trace(self):
        stats = trace_statistics(AvailabilityTrace(np.empty(0), np.empty(0), 100.0))
        assert stats.availability == 0.0
        assert stats.n_sessions == 0

    def test_generated_trace_matches_model(self):
        # 6h on / 6h off renewal -> ~50% availability, ~6h sessions.
        stats = trace_statistics(_trace(seed=1))
        assert 0.3 < stats.availability < 0.7
        assert 2 * 3600 < stats.mean_session_s < 12 * 3600

    def test_as_rows(self):
        stats = trace_statistics(_trace())
        rows = dict(stats.as_rows())
        assert "availability" in rows
        assert rows["sessions"] == stats.n_sessions

    def test_statistics_survive_roundtrip(self, tmp_path):
        trace = _trace(seed=7)
        back = read_trace_csv(write_trace_csv(tmp_path / "t.csv", trace))
        a = trace_statistics(trace)
        b = trace_statistics(back)
        assert a.n_sessions == b.n_sessions
        assert a.availability == pytest.approx(b.availability, abs=1e-6)
