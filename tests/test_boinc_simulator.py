"""Tests for repro.boinc.simulator: scaled end-to-end campaigns."""

from __future__ import annotations

import numpy as np
import pytest

from repro import constants as C
from repro.boinc.simulator import Telemetry, scaled_phase1


@pytest.fixture(scope="module")
def campaign():
    """One small campaign simulation shared below (read-only)."""
    return scaled_phase1(scale=150, n_proteins=16)


@pytest.fixture(scope="module")
def campaign_result(campaign):
    return campaign.run()


class TestTelemetry:
    def test_daily_buckets(self):
        t = Telemetry(horizon_s=14 * 86400.0)
        t.record_result(0.5 * 86400, 100.0)
        t.record_result(1.5 * 86400, 200.0)
        assert t.daily_results[0] == 1
        assert t.daily_cpu_s[1] == 200.0

    def test_overflow_clamped_to_last_bucket(self):
        t = Telemetry(horizon_s=7 * 86400.0)
        t.record_result(1e9, 1.0)
        assert t.daily_results[-1] == 1

    def test_weekly_vftp_shape(self):
        t = Telemetry(horizon_s=21 * 86400.0)
        t.record_result(3 * 86400, 86400.0)  # 1 cpu-day in week 0
        weekly = t.weekly_vftp()
        assert weekly[0] == pytest.approx(1 / 7)


class TestCampaignCompletes:
    def test_completion_near_26_weeks(self, campaign_result):
        assert campaign_result.completion_weeks is not None
        assert 20 < campaign_result.completion_weeks < 33

    def test_all_workunits_validated(self, campaign_result):
        server = campaign_result.server
        assert server.stats.effective == server.n_workunits

    def test_all_batches_complete(self, campaign_result):
        assert np.isfinite(campaign_result.batch_completion_s).all()

    def test_useful_work_equals_total(self, campaign, campaign_result):
        # Conservation: validated reference work == the packaged total.
        stats = campaign_result.server.stats
        assert stats.useful_reference_s == pytest.approx(
            campaign.campaign.total_work, rel=1e-9
        )


class TestScaleFreeObservables:
    """The paper's scale-independent anchors, at tolerance."""

    def test_redundancy_factor(self, campaign_result):
        m = campaign_result.metrics()
        assert m.redundancy == pytest.approx(C.REDUNDANCY_FACTOR, abs=0.25)

    def test_useful_fraction(self, campaign_result):
        m = campaign_result.metrics()
        assert m.useful_result_fraction == pytest.approx(
            C.USEFUL_RESULT_FRACTION, abs=0.12
        )

    def test_net_speed_down(self, campaign_result):
        m = campaign_result.metrics()
        # Stochastic at this scale (few hundred hosts): +-25%.
        assert m.speed_down_net == pytest.approx(C.SPEED_DOWN_NET, rel=0.25)

    def test_raw_speed_down_exceeds_net(self, campaign_result):
        m = campaign_result.metrics()
        assert m.speed_down_raw > m.speed_down_net

    def test_mean_device_hours_track_speed_down(self, campaign, campaign_result):
        # The paper's "13 h device time for 3.3 h workunits" relation:
        # device hours ~ workunit reference hours x net speed-down.  (At
        # aggressive scale factors the absolute workunit size shrinks —
        # whole couples fit under the target — so the ratio is the
        # scale-free observable.)
        mean_wu_h = campaign.plan.duration_stats()["mean"] / 3600.0
        expected = mean_wu_h * C.SPEED_DOWN_NET
        assert campaign_result.mean_device_run_hours() == pytest.approx(
            expected, rel=0.25
        )

    def test_three_phase_vftp_shape(self, campaign_result):
        weekly = campaign_result.telemetry.weekly_vftp()
        control = weekly[2:8].mean()
        full = weekly[14:22].mean()
        assert full > 3.0 * control  # the prioritization jump

    def test_small_batches_complete_first(self, campaign_result):
        # Release order is least-cost-first, so early batches finish
        # (on average) before late ones.
        t = campaign_result.batch_completion_s
        first_half = t[: len(t) // 2].mean()
        second_half = t[len(t) // 2 :].mean()
        assert first_half < second_half


class TestDeterminism:
    def test_same_seed_same_trajectory(self):
        a = scaled_phase1(scale=700, n_proteins=6).run()
        b = scaled_phase1(scale=700, n_proteins=6).run()
        assert a.completion_time == b.completion_time
        assert a.server.stats.disclosed == b.server.stats.disclosed
        np.testing.assert_array_equal(
            a.telemetry.daily_results, b.telemetry.daily_results
        )

    def test_different_seed_differs(self):
        a = scaled_phase1(scale=700, n_proteins=6, seed=1).run()
        b = scaled_phase1(scale=700, n_proteins=6, seed=2).run()
        assert a.server.stats.disclosed != b.server.stats.disclosed


class TestSizing:
    def test_auto_host_count_scales_with_work(self):
        small = scaled_phase1(scale=400, n_proteins=12)
        big = scaled_phase1(scale=100, n_proteins=12)
        assert big.n_hosts_peak > small.n_hosts_peak

    def test_explicit_host_count_respected(self):
        sim = scaled_phase1(scale=400, n_proteins=6, n_hosts_peak=11)
        assert sim.n_hosts_peak == 11


class TestShipments:
    def test_every_batch_ships_once(self, campaign, campaign_result):
        assert len(campaign_result.telemetry.shipments) == len(campaign.library)

    def test_shipped_volume_matches_dataset_model(self, campaign, campaign_result):
        from repro.validation.merge import dataset_volume

        expected = dataset_volume(campaign.library).raw_bytes
        assert campaign_result.shipped_bytes_total() == expected

    def test_shipment_curve_monotone(self, campaign_result):
        times, sizes = campaign_result.shipment_curve()
        assert (np.diff(times) >= 0).all()
        assert (np.diff(sizes) > 0).all()

    def test_shipments_within_span(self, campaign_result):
        times, _ = campaign_result.shipment_curve()
        assert times.max() <= campaign_result.span_s + 1e-6


class TestExport:
    def test_export_writes_artifacts(self, tmp_path, campaign_result):
        import csv
        import json

        paths = campaign_result.export(tmp_path)
        names = sorted(p.name for p in paths)
        assert names == ["daily.csv", "metrics.json", "workunit_runs.csv"]
        with (tmp_path / "daily.csv").open() as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == ["day", "cpu_seconds", "results", "useful"]
        assert len(rows) > 100
        metrics = json.loads((tmp_path / "metrics.json").read_text())
        assert metrics["redundancy"] == pytest.approx(
            campaign_result.metrics().redundancy
        )
        assert metrics["shipped_bytes"] == campaign_result.shipped_bytes_total()
