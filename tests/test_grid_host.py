"""Tests for repro.grid.host: the volunteer host model (Section 6)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import constants as C
from repro.grid.host import HostPopulationModel, HostProfile, HostSpec
from repro.grid.availability import AvailabilityTrace


def _spec(**kw):
    defaults = dict(
        host_id=0, speed=1.0, duty_cycle=0.5, reliability=0.95,
        abandon_prob=0.02, report_delay_mean_s=3600.0,
        trace=AvailabilityTrace(np.array([0.0]), np.array([1e6]), 1e7),
    )
    defaults.update(kw)
    return HostSpec(**defaults)


class TestHostSpec:
    def test_progress_rate(self):
        assert _spec(speed=0.8, duty_cycle=0.5).progress_rate == pytest.approx(0.4)

    def test_active_seconds(self):
        # 1 hour of reference work at rate 0.25 -> 4 hours active wall.
        assert _spec(speed=0.5, duty_cycle=0.5).active_seconds_for(3600) == pytest.approx(
            14_400
        )

    def test_active_seconds_rejects_negative(self):
        with pytest.raises(ValueError):
            _spec().active_seconds_for(-1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            _spec(speed=0.0)
        with pytest.raises(ValueError):
            _spec(duty_cycle=1.5)
        with pytest.raises(ValueError):
            _spec(reliability=-0.1)


class TestProfileCalibration:
    def test_net_speed_down_matches_paper(self):
        # The default profile is calibrated to Section 6's 3.96.
        profile = HostProfile()
        assert profile.expected_net_speed_down() == pytest.approx(
            C.SPEED_DOWN_NET, rel=0.03
        )

    def test_throttle_is_ud_default(self):
        assert HostProfile().throttle == 0.60

    def test_duty_cycle_below_throttle(self):
        # The lowest-priority task never gets more than the throttle allows.
        model = HostPopulationModel(seed=1)
        for i in range(20):
            spec = model.spec(i)
            assert spec.duty_cycle <= HostProfile().throttle


class TestPopulationModel:
    def test_specs_deterministic(self):
        m = HostPopulationModel(seed=5)
        a = m.spec(3)
        b = m.spec(3)
        assert a.speed == b.speed
        np.testing.assert_array_equal(a.trace.starts, b.trace.starts)

    def test_specs_independent_of_order(self):
        m1 = HostPopulationModel(seed=5)
        _ = m1.spec(0)
        late = m1.spec(7)
        m2 = HostPopulationModel(seed=5)
        direct = m2.spec(7)
        assert late.speed == direct.speed

    def test_join_time_propagates(self):
        m = HostPopulationModel(seed=5, horizon=50 * 86400.0)
        spec = m.spec(0, join_time=20 * 86400.0)
        if spec.trace.n_intervals():
            assert spec.trace.starts[0] >= 20 * 86400.0

    def test_speed_distribution_spread(self):
        m = HostPopulationModel(seed=2)
        speeds = np.array([m.spec(i).speed for i in range(200)])
        assert 0.6 < np.median(speeds) < 1.1
        assert speeds.std() > 0.1  # heterogeneous population

    def test_with_profile_overrides(self):
        m = HostPopulationModel(seed=2).with_profile(reliability=0.5)
        assert m.profile.reliability == 0.5
        assert m.spec(0).reliability == 0.5

    def test_mean_inverse_rate_near_net_speed_down(self):
        # Sampled hosts realize the population speed-down.
        m = HostPopulationModel(seed=9)
        rates = np.array([1.0 / m.spec(i).progress_rate for i in range(400)])
        assert rates.mean() == pytest.approx(C.SPEED_DOWN_NET, rel=0.12)
