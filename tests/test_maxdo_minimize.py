"""Tests for repro.maxdo.minimize: rigid-body 6-DOF minimization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.maxdo.energy import interaction_energy
from repro.maxdo.minimize import minimize_rigid, pose_gradient
from repro.maxdo.orientations import rotation_matrix


def _start(receptor, ligand, extra=5.0):
    return np.array(
        [receptor.bounding_radius + ligand.bounding_radius + extra, 1.0, -1.0]
    )


class TestPoseGradient:
    def test_matches_finite_differences(self, tiny_receptor, tiny_ligand):
        params = np.concatenate([_start(tiny_receptor, tiny_ligand), [0.3, 1.1, -0.4]])
        _, grad = pose_gradient(tiny_receptor, tiny_ligand, params)
        h = 1e-6
        for k in range(6):
            d = np.zeros(6)
            d[k] = h
            ep, _ = pose_gradient(tiny_receptor, tiny_ligand, params + d)
            em, _ = pose_gradient(tiny_receptor, tiny_ligand, params - d)
            num = (ep - em) / (2 * h)
            assert grad[k] == pytest.approx(num, rel=1e-4, abs=1e-7)

    def test_energy_matches_interaction_energy(self, tiny_receptor, tiny_ligand):
        params = np.concatenate([_start(tiny_receptor, tiny_ligand), [0.2, 0.9, 1.5]])
        energy, _ = pose_gradient(tiny_receptor, tiny_ligand, params)
        lj, el = interaction_energy(
            tiny_receptor, tiny_ligand, rotation_matrix(*params[3:]), params[:3]
        )
        assert energy == pytest.approx(lj + el, rel=1e-12)


class TestMinimizeRigid:
    def test_never_increases_energy(self, tiny_receptor, tiny_ligand):
        start_t = _start(tiny_receptor, tiny_ligand)
        start_e = np.array([0.3, 1.1, -0.4])
        e0, _ = pose_gradient(
            tiny_receptor, tiny_ligand, np.concatenate([start_t, start_e])
        )
        res = minimize_rigid(tiny_receptor, tiny_ligand, start_t, start_e)
        assert res.energy_total <= e0 + 1e-9

    def test_energy_components_recomputed_at_optimum(self, tiny_receptor, tiny_ligand):
        res = minimize_rigid(
            tiny_receptor, tiny_ligand, _start(tiny_receptor, tiny_ligand),
            np.array([0.0, 0.5, 0.0]),
        )
        lj, el = interaction_energy(
            tiny_receptor, tiny_ligand, rotation_matrix(*res.euler), res.translation
        )
        assert res.energy_lj == pytest.approx(lj, rel=1e-12)
        assert res.energy_elec == pytest.approx(el, rel=1e-12)

    def test_translation_window_respected(self, tiny_receptor, tiny_ligand):
        start_t = _start(tiny_receptor, tiny_ligand)
        res = minimize_rigid(
            tiny_receptor, tiny_ligand, start_t, np.zeros(3), translation_window=2.0
        )
        assert np.abs(res.translation - start_t).max() <= 2.0 + 1e-9

    def test_deterministic(self, tiny_receptor, tiny_ligand):
        args = (tiny_receptor, tiny_ligand, _start(tiny_receptor, tiny_ligand),
                np.array([0.1, 0.7, -0.2]))
        a = minimize_rigid(*args)
        b = minimize_rigid(*args)
        assert a.energy_total == b.energy_total
        np.testing.assert_array_equal(a.translation, b.translation)

    def test_max_iterations_limits_work(self, tiny_receptor, tiny_ligand):
        res = minimize_rigid(
            tiny_receptor, tiny_ligand, _start(tiny_receptor, tiny_ligand),
            np.zeros(3), max_iterations=2,
        )
        # L-BFGS-B spends a handful of evaluations per iteration.
        assert res.n_evaluations < 40

    def test_shape_validation(self, tiny_receptor, tiny_ligand):
        with pytest.raises(ValueError):
            minimize_rigid(tiny_receptor, tiny_ligand, np.zeros(2), np.zeros(3))

    def test_finds_negative_energy_from_repulsive_start(
        self, tiny_receptor, tiny_ligand
    ):
        # Start slightly overlapping (repulsive); the minimizer should back
        # out into the attractive well.
        start_t = _start(tiny_receptor, tiny_ligand, extra=-3.0)
        res = minimize_rigid(tiny_receptor, tiny_ligand, start_t, np.zeros(3))
        assert res.energy_total < 0
