"""Tests for repro.core.estimation: formula (1) and the calibration run."""

from __future__ import annotations

import numpy as np
import pytest

from repro import constants as C
from repro.core.estimation import calibration_experiment, estimate_total_work
from repro.units import SECONDS_PER_DAY


class TestEstimate:
    def test_phase1_headline_figure(self, phase1_library, phase1_cost_model):
        report = estimate_total_work(phase1_library, phase1_cost_model)
        assert report.total_ydhms == "1,488:237:19:45:54"

    def test_max_workunits(self, phase1_library, phase1_cost_model):
        report = estimate_total_work(phase1_library, phase1_cost_model)
        assert report.max_workunits == 49_481_544

    def test_result_volume_near_paper(self, phase1_library, phase1_cost_model):
        report = estimate_total_work(phase1_library, phase1_cost_model)
        # 123 GB of result text (Section 5.2).
        assert report.result_bytes == pytest.approx(123e9, rel=0.03)

    def test_small_library_scales(self, small_library, small_cost_model):
        report = estimate_total_work(small_library, small_cost_model)
        assert report.n_proteins == 12
        expected = small_library.total_max_workunits
        assert report.max_workunits == expected
        assert report.total_reference_cpu_s == pytest.approx(
            small_cost_model.total_reference_cpu()
        )


class TestCalibrationExperiment:
    def test_recovers_matrix(self, small_cost_model):
        _, recovered = calibration_experiment(small_cost_model)
        # The recovered slopes match the true matrix within jitter+overhead.
        rel = np.abs(recovered - small_cost_model.mct) / small_cost_model.mct
        assert np.median(rel) < 0.15

    def test_cpu_days_near_paper(self, phase1_cost_model):
        plan, _ = calibration_experiment(phase1_cost_model)
        # "more than 73 days of cpu time" for the 168^2 campaign.
        assert plan.cpu_days == pytest.approx(C.CALIBRATION_CPU_DAYS, rel=0.20)

    def test_fits_one_day_reservation(self, phase1_cost_model):
        plan, _ = calibration_experiment(phase1_cost_model)
        assert plan.fits_in_reservation
        assert plan.makespan_lower_bound_s <= SECONDS_PER_DAY

    def test_makespan_bound_definition(self, small_cost_model):
        plan, _ = calibration_experiment(small_cost_model, n_processors=2)
        assert plan.makespan_lower_bound_s >= plan.cpu_seconds / 2
        assert plan.makespan_lower_bound_s >= plan.longest_task_s

    def test_rejects_zero_samples(self, small_cost_model):
        with pytest.raises(ValueError):
            calibration_experiment(small_cost_model, samples_per_couple=0)

    def test_couple_count(self, small_cost_model):
        plan, recovered = calibration_experiment(small_cost_model)
        assert plan.n_couples == 144
        assert recovered.shape == (12, 12)
