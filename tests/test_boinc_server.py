"""Tests for repro.boinc.server: workunit DB, deadlines, reissue, quorum."""

from __future__ import annotations

import pytest

from repro.boinc.server import GridServer, ServerConfig
from repro.boinc.validator import ValidationPolicy
from repro.core.workunit import WorkUnit
from repro.grid.des import Simulator


def _workunits(n=4, batch_size=2):
    return [
        (
            WorkUnit(
                wu_id=k, receptor=k // batch_size, ligand=0,
                isep_start=1, nsep=5, cost_reference_s=1000.0,
            ),
            k // batch_size,
        )
        for k in range(n)
    ]


def _server(sim, n=4, switch_time=0.0, deadline=100.0, **kw):
    # switch_time=0 -> bounds regime (single result validates) by default.
    config = ServerConfig(
        deadline_s=deadline, validation=ValidationPolicy(switch_time=switch_time)
    )
    return GridServer(sim, _workunits(n), config=config, **kw)


class TestRequestWork:
    def test_release_order(self):
        sim = Simulator()
        server = _server(sim)
        first = server.request_work(host_id=1)
        second = server.request_work(host_id=2)
        assert first.wu.wu_id == 0
        assert second.wu.wu_id == 1

    def test_exhaustion_returns_none(self):
        sim = Simulator()
        server = _server(sim, n=2)
        assert server.request_work(1) is not None
        assert server.request_work(1) is not None
        assert server.request_work(1) is None

    def test_quorum_era_replicates(self):
        sim = Simulator()
        server = _server(sim, n=2, switch_time=1e9)  # always quorum
        a = server.request_work(1)
        b = server.request_work(2)
        # Second request gets a COPY of workunit 0, not workunit 1.
        assert a.wu.wu_id == 0 and b.wu.wu_id == 0

    def test_id_position_validation(self):
        sim = Simulator()
        wus = _workunits(2)
        wus[0], wus[1] = wus[1], wus[0]
        with pytest.raises(ValueError):
            GridServer(sim, wus)


class TestResults:
    def test_single_valid_result_validates_in_bounds_era(self):
        sim = Simulator()
        server = _server(sim)
        inst = server.request_work(1)
        server.on_result(inst, valid=True, accounted_cpu_s=500.0)
        assert server.stats.effective == 1
        assert server.stats.useful_reference_s == 1000.0

    def test_quorum_needs_two(self):
        sim = Simulator()
        server = _server(sim, switch_time=1e9)
        a = server.request_work(1)
        b = server.request_work(2)
        server.on_result(a, valid=True, accounted_cpu_s=1.0)
        assert server.stats.effective == 0
        server.on_result(b, valid=True, accounted_cpu_s=1.0)
        assert server.stats.effective == 1
        assert server.stats.quorum_extra == 1

    def test_invalid_result_triggers_reissue(self):
        sim = Simulator()
        server = _server(sim, n=1)
        inst = server.request_work(1)
        server.on_result(inst, valid=False, accounted_cpu_s=1.0)
        assert server.stats.invalid == 1
        again = server.request_work(2)
        assert again is not None and again.wu.wu_id == 0

    def test_late_result_counted_redundant(self):
        sim = Simulator()
        server = _server(sim)
        a = server.request_work(1)
        b = server.request_work(2)  # wu 1
        # Validate wu 0 via a; then a stale copy of wu 0 arrives.
        server.on_result(a, valid=True, accounted_cpu_s=1.0)
        # Simulate the timeout-then-late-report path: reissue wu by hand.
        sim.run(until=200.0)  # deadline of b expires -> wu 1 reissued
        c = server.request_work(3)
        assert c.wu.wu_id == 1
        server.on_result(c, valid=True, accounted_cpu_s=1.0)
        server.on_result(b, valid=True, accounted_cpu_s=1.0)  # late copy
        assert server.stats.late == 1
        assert server.stats.disclosed == 3
        assert server.stats.effective == 2

    def test_double_report_rejected(self):
        sim = Simulator()
        server = _server(sim)
        inst = server.request_work(1)
        server.on_result(inst, valid=True, accounted_cpu_s=1.0)
        with pytest.raises(RuntimeError):
            server.on_result(inst, valid=True, accounted_cpu_s=1.0)

    def test_quorum_partner_reissued_when_no_outstanding(self):
        sim = Simulator()
        server = _server(sim, n=1, switch_time=1e9)
        a = server.request_work(1)
        b = server.request_work(2)
        server.on_result(a, valid=True, accounted_cpu_s=1.0)
        server.on_result(b, valid=False, accounted_cpu_s=1.0)
        # Valid result is waiting for a partner; a new copy must ship.
        c = server.request_work(3)
        assert c is not None and c.wu.wu_id == 0
        server.on_result(c, valid=True, accounted_cpu_s=1.0)
        assert server.stats.effective == 1


class TestDeadlines:
    def test_timeout_reissues(self):
        sim = Simulator()
        server = _server(sim, n=1, deadline=50.0)
        inst = server.request_work(1)
        assert server.request_work(2) is None
        sim.run(until=60.0)  # deadline passes
        again = server.request_work(2)
        assert again is not None and again.wu.wu_id == 0
        # The abandoned instance never reports; the new one completes.
        server.on_result(again, valid=True, accounted_cpu_s=1.0)
        assert server.completion_time is None or server.stats.effective == 1

    def test_report_cancels_timeout(self):
        sim = Simulator()
        server = _server(sim, n=1, deadline=50.0)
        inst = server.request_work(1)
        server.on_result(inst, valid=True, accounted_cpu_s=1.0)
        sim.run(until=100.0)
        # No reissue after validation: nothing to hand out.
        assert server.request_work(2) is None


class TestLateRace:
    """Results racing the deadline reissue must not double-count."""

    def test_timed_out_copy_keeps_outstanding_balanced(self):
        sim = Simulator()
        server = _server(sim, n=1, switch_time=1e9, deadline=50.0)
        a = server.request_work(1)
        sim.run(until=20.0)
        b = server.request_work(2)  # second quorum copy, later deadline
        sim.run(until=55.0)  # only a's deadline passed: reclaim + requeue
        assert a.timed_out and not b.timed_out
        # The late report arrives while the reissued copy is unclaimed.
        server.on_result(a, valid=True, accounted_cpu_s=1.0)
        # a already gave its outstanding slot back at the deadline; the
        # late report must not free a second one, which would read as a
        # quorum stall and spuriously queue yet another copy.
        c = server.request_work(3)
        assert c is not None and c.wu.wu_id == 0  # the deadline reissue
        assert server.request_work(4) is None  # ...and nothing beyond it
        # The late-but-prevalidation result still counts toward quorum.
        server.on_result(c, valid=True, accounted_cpu_s=1.0)
        assert server.stats.effective == 1
        assert server.stats.useful_reference_s == 1000.0
        server.on_result(b, valid=True, accounted_cpu_s=1.0)
        assert server.stats.late == 1
        assert server.stats.effective == 1  # no double validation

    def test_late_report_after_validation_stays_redundant(self):
        sim = Simulator()
        server = _server(sim, n=1, deadline=50.0)  # bounds: single validates
        a = server.request_work(1)
        sim.run(until=60.0)  # a reclaimed and reissued
        c = server.request_work(2)
        server.on_result(c, valid=True, accounted_cpu_s=1.0)
        assert server.stats.effective == 1
        t_done = server.completion_time
        assert t_done is not None
        done_batches = list(server.batch_completion)
        # The abandoned copy finally reports, long after validation.
        server.on_result(a, valid=True, accounted_cpu_s=1.0)
        assert server.stats.late == 1
        assert server.stats.effective == 1
        assert server.stats.useful_reference_s == 1000.0  # credited once
        assert server.completion_time == t_done
        assert list(server.batch_completion) == done_batches


class TestBatches:
    def test_batch_completion_callback(self):
        sim = Simulator()
        completed = []
        server = _server(
            sim, n=4, on_batch_complete=lambda b, t: completed.append(b)
        )
        for _ in range(4):
            inst = server.request_work(1)
            server.on_result(inst, valid=True, accounted_cpu_s=1.0)
        assert completed == [0, 1]
        assert server.completion_time is not None

    def test_workunit_valid_callback(self):
        sim = Simulator()
        seen = []
        server = _server(sim, n=2, on_workunit_valid=lambda wu, t: seen.append(wu.wu_id))
        inst = server.request_work(1)
        server.on_result(inst, valid=True, accounted_cpu_s=1.0)
        assert seen == [0]
