"""Tests for repro.boinc.validator: validation regimes and accounting."""

from __future__ import annotations

import pytest

from repro.boinc.validator import ValidationPolicy, ValidationStats


class TestValidationPolicy:
    def test_quorum_before_switch(self):
        policy = ValidationPolicy(switch_time=100.0)
        assert policy.quorum_at(50.0) == 2
        assert policy.replication_at(50.0) == 2

    def test_bounds_after_switch(self):
        policy = ValidationPolicy(switch_time=100.0)
        assert policy.quorum_at(100.0) == 1
        assert policy.quorum_at(500.0) == 1

    def test_custom_quorum(self):
        policy = ValidationPolicy(switch_time=100.0, quorum=3)
        assert policy.quorum_at(0.0) == 3


class TestValidationStats:
    def test_redundancy_factor(self):
        stats = ValidationStats()
        for _ in range(137):
            stats.record_result(10.0)
        for _ in range(100):
            stats.record_validation(5.0, "bounds")
        assert stats.redundancy_factor == pytest.approx(1.37)
        assert stats.useful_fraction == pytest.approx(1 / 1.37)

    def test_cpu_accumulation(self):
        stats = ValidationStats()
        stats.record_result(10.0)
        stats.record_result(15.0)
        assert stats.consumed_cpu_s == 25.0

    def test_useful_reference_accumulation(self):
        stats = ValidationStats()
        stats.record_validation(100.0, "quorum")
        stats.record_validation(200.0, "bounds")
        assert stats.useful_reference_s == 300.0
        assert stats.validated_by_regime == {"quorum": 1, "bounds": 1, "adaptive": 0}

    def test_redundancy_requires_validations(self):
        with pytest.raises(ValueError):
            ValidationStats().redundancy_factor

    def test_useful_fraction_requires_results(self):
        with pytest.raises(ValueError):
            ValidationStats().useful_fraction
