"""Equivalence suite for the batched docking engine.

The batched engine (pose-vectorized kernels, lockstep L-BFGS-B, optional
fused C kernels) is contractually *bit-identical* to the scalar reference
path — not merely close.  On the rugged LJ landscape a 1e-15 kernel
discrepancy amplifies chaotically through the minimizer into O(1) kcal/mol
final-energy differences, so these tests assert exact equality wherever
the contract promises it, and the looser paper-level tolerances (1e-9
kernels, 1e-6 final energies) on top as the documented guarantees.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.maxdo import energy as energy_mod
from repro.maxdo import pairtable
from repro.maxdo.docking import (
    MaxDoRun,
    dock_couple,
    dock_position,
    ligand_start_positions,
)
from repro.maxdo.energy import (
    EnergyParams,
    batch_energy_and_pose_gradient,
    batch_interaction_energy,
    interaction_energy,
)
from repro.maxdo.minimize import minimize_rigid, minimize_rigid_batch, pose_gradient
from repro.maxdo.orientations import (
    gamma_values,
    orientation_couples,
    rotation_matrix,
)
from repro.maxdo.pairtable import pair_table
from repro.proteins.surface import starting_positions


def _orientation_poses(receptor, ligand, n_positions=1):
    """The paper's 210-orientation pose grid at real starting positions."""
    couples = orientation_couples()
    gammas = gamma_values()
    anchors = ligand_start_positions(
        starting_positions(receptor, max(n_positions, 2)), ligand
    )[:n_positions]
    poses = []
    for pos in anchors:
        for alpha, beta in couples:
            for gamma in gammas:
                poses.append([*pos, alpha, beta, gamma])
    return np.asarray(poses)


# --- kernel equivalence -------------------------------------------------


class TestBatchKernelEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(
        dist=st.floats(0.7, 3.0),
        theta=st.floats(0.0, np.pi),
        phi=st.floats(0.0, 2.0 * np.pi),
        alpha=st.floats(-7.0, 7.0),
        beta=st.floats(-7.0, 7.0),
        gamma=st.floats(-7.0, 7.0),
    )
    def test_energy_matches_scalar(
        self, tiny_receptor, tiny_ligand, dist, theta, phi, alpha, beta, gamma
    ):
        """batch_interaction_energy == interaction_energy, pose by pose."""
        r = dist * (tiny_receptor.bounding_radius + tiny_ligand.bounding_radius)
        t = r * np.array(
            [
                np.sin(theta) * np.cos(phi),
                np.sin(theta) * np.sin(phi),
                np.cos(theta),
            ]
        )
        pose = np.array([[*t, alpha, beta, gamma]])
        table = pair_table(tiny_receptor, tiny_ligand)
        lj_b, el_b = batch_interaction_energy(table, pose)
        lj_s, el_s = interaction_energy(
            tiny_receptor, tiny_ligand, rotation_matrix(alpha, beta, gamma), t
        )
        np.testing.assert_allclose(lj_b[0], lj_s, rtol=1e-9, atol=0)
        np.testing.assert_allclose(el_b[0], el_s, rtol=1e-9, atol=0)

    @settings(max_examples=25, deadline=None)
    @given(
        dist=st.floats(0.7, 3.0),
        theta=st.floats(0.0, np.pi),
        phi=st.floats(0.0, 2.0 * np.pi),
        alpha=st.floats(-7.0, 7.0),
        beta=st.floats(-7.0, 7.0),
        gamma=st.floats(-7.0, 7.0),
    )
    def test_gradient_matches_scalar(
        self, tiny_receptor, tiny_ligand, dist, theta, phi, alpha, beta, gamma
    ):
        """batch_energy_and_pose_gradient == pose_gradient, pose by pose."""
        r = dist * (tiny_receptor.bounding_radius + tiny_ligand.bounding_radius)
        t = r * np.array(
            [
                np.sin(theta) * np.cos(phi),
                np.sin(theta) * np.sin(phi),
                np.cos(theta),
            ]
        )
        pose = np.array([[*t, alpha, beta, gamma]])
        table = pair_table(tiny_receptor, tiny_ligand)
        e_b, g_b = batch_energy_and_pose_gradient(table, pose)
        e_s, g_s = pose_gradient(tiny_receptor, tiny_ligand, pose[0])
        np.testing.assert_allclose(e_b[0], e_s, rtol=1e-9, atol=0)
        np.testing.assert_allclose(g_b[0], g_s, rtol=1e-9, atol=1e-300)

    def test_bit_identical_on_orientation_grid(self, tiny_receptor, tiny_ligand):
        """On the paper's 210-pose grid the kernels are exactly equal —
        the property the trajectory equivalence below rests on."""
        poses = _orientation_poses(tiny_receptor, tiny_ligand)
        table = pair_table(tiny_receptor, tiny_ligand)
        lj_b, el_b = batch_interaction_energy(table, poses)
        e_b, g_b = batch_energy_and_pose_gradient(table, poses)
        for i, pose in enumerate(poses):
            lj_s, el_s = interaction_energy(
                tiny_receptor,
                tiny_ligand,
                rotation_matrix(*pose[3:]),
                pose[:3],
            )
            e_s, g_s = pose_gradient(tiny_receptor, tiny_ligand, pose)
            assert lj_b[i] == lj_s and el_b[i] == el_s
            assert e_b[i] == e_s and (g_b[i] == g_s).all()

    def test_numpy_fallback_is_also_bit_identical(
        self, tiny_receptor, tiny_ligand, monkeypatch
    ):
        """Without the fused C kernels (no compiler on the host) the numpy
        broadcast fallback must preserve the same bit-parity contract."""
        poses = _orientation_poses(tiny_receptor, tiny_ligand)[:40]
        table = pair_table(tiny_receptor, tiny_ligand)
        fused_lj, fused_el = batch_interaction_energy(table, poses)
        fused_e, fused_g = batch_energy_and_pose_gradient(table, poses)
        monkeypatch.setattr(energy_mod, "_fused_ready", lambda n: False)
        lj, el = batch_interaction_energy(table, poses)
        e, g = batch_energy_and_pose_gradient(table, poses)
        assert (lj == fused_lj).all() and (el == fused_el).all()
        assert (e == fused_e).all() and (g == fused_g).all()
        e_s, g_s = pose_gradient(tiny_receptor, tiny_ligand, poses[7])
        assert e[7] == e_s and (g[7] == g_s).all()

    def test_batch_minimize_retraces_scalar_trajectories(
        self, tiny_receptor, tiny_ligand
    ):
        """Lockstep batch minimization lands exactly where the scalar
        minimizer does, pose for pose (not just within tolerance)."""
        poses = _orientation_poses(tiny_receptor, tiny_ligand)[:12]
        batch = minimize_rigid_batch(
            tiny_receptor,
            tiny_ligand,
            poses[:, :3],
            poses[:, 3:],
            max_iterations=40,
        )
        for i, pose in enumerate(poses):
            res = minimize_rigid(
                tiny_receptor, tiny_ligand, pose[:3], pose[3:], max_iterations=40
            )
            assert batch.energy_lj[i] == res.energy_lj
            assert batch.energy_elec[i] == res.energy_elec
            assert (batch.translations[i] == res.translation).all()
            assert (batch.eulers[i] == res.euler).all()
            # the documented guarantee, subsumed by the equality above
            assert abs(batch.energy_lj[i] + batch.energy_elec[i]
                       - res.energy_total) <= 1e-6


# --- pair-table cache ---------------------------------------------------


class TestPairTableCache:
    def test_cache_hit_on_same_couple(self, tiny_receptor, tiny_ligand):
        pairtable.cache_clear()
        t1 = pair_table(tiny_receptor, tiny_ligand)
        before = pairtable.cache_info()
        t2 = pair_table(tiny_receptor, tiny_ligand)
        after = pairtable.cache_info()
        assert t2 is t1
        assert after.hits == before.hits + 1
        assert after.misses == before.misses

    def test_distinct_params_miss(self, tiny_receptor, tiny_ligand):
        pairtable.cache_clear()
        t1 = pair_table(tiny_receptor, tiny_ligand)
        t2 = pair_table(
            tiny_receptor, tiny_ligand, EnergyParams(dielectric=30.0)
        )
        assert t2 is not t1
        assert pairtable.cache_info().misses == 2

    def test_table_arrays_read_only(self, tiny_receptor, tiny_ligand):
        t = pair_table(tiny_receptor, tiny_ligand)
        for arr in (t.sigma2, t.eps_geom, t.eps_lj, t.q_coef):
            assert not arr.flags.writeable


# --- engine wiring ------------------------------------------------------


class TestEngineEquivalence:
    def test_dock_couple_engines_bit_identical(self, tiny_receptor, tiny_ligand):
        kw = dict(nsep=2, max_iterations=30)
        batched = dock_couple(tiny_receptor, tiny_ligand, engine="batched", **kw)
        reference = dock_couple(
            tiny_receptor, tiny_ligand, engine="reference", **kw
        )
        assert (batched.e_lj == reference.e_lj).all()
        assert (batched.e_elec == reference.e_elec).all()
        assert (batched.positions == reference.positions).all()
        assert (batched.eulers == reference.eulers).all()
        assert batched.to_lines() == reference.to_lines()
        # documented guarantee (subsumed by the exact equality above)
        assert np.abs(batched.e_total - reference.e_total).max() <= 1e-6

    def test_dock_couple_engines_agree_without_minimization(
        self, tiny_receptor, tiny_ligand
    ):
        batched = dock_couple(
            tiny_receptor, tiny_ligand, nsep=2, minimize=False, engine="batched"
        )
        reference = dock_couple(
            tiny_receptor, tiny_ligand, nsep=2, minimize=False, engine="reference"
        )
        assert (batched.e_lj == reference.e_lj).all()
        assert (batched.e_elec == reference.e_elec).all()
        assert (batched.positions == reference.positions).all()
        assert (batched.eulers == reference.eulers).all()

    def test_unknown_engine_rejected(self, tiny_receptor, tiny_ligand):
        with pytest.raises(ValueError, match="engine"):
            dock_couple(tiny_receptor, tiny_ligand, nsep=1, engine="gpu")
        with pytest.raises(ValueError, match="engine"):
            dock_position(
                tiny_receptor,
                tiny_ligand,
                np.array([30.0, 0.0, 0.0]),
                orientation_couples(),
                gamma_values(),
                engine="quantum",
            )
        with pytest.raises(ValueError, match="engine"):
            MaxDoRun(
                tiny_receptor, tiny_ligand, 1, 1, 1, "/tmp/unused", engine=""
            )

    def test_batched_is_faster_smoke(self, tiny_receptor, tiny_ligand):
        """Cheap sanity check that the batched engine actually pays off;
        the quantitative >=5x claim lives in bench_docking_engine.py."""
        import time

        kw = dict(nsep=1, max_iterations=20)
        t0 = time.perf_counter()
        dock_couple(tiny_receptor, tiny_ligand, engine="batched", **kw)
        t_batched = time.perf_counter() - t0
        t0 = time.perf_counter()
        dock_couple(tiny_receptor, tiny_ligand, engine="reference", **kw)
        t_reference = time.perf_counter() - t0
        assert t_batched < t_reference


class TestParallelFanOut:
    def test_n_workers_bit_identical(self, tiny_receptor, tiny_ligand):
        kw = dict(nsep=3, max_iterations=20)
        serial = dock_couple(tiny_receptor, tiny_ligand, **kw)
        fanned = dock_couple(tiny_receptor, tiny_ligand, n_workers=2, **kw)
        assert (serial.e_lj == fanned.e_lj).all()
        assert (serial.e_elec == fanned.e_elec).all()
        assert (serial.positions == fanned.positions).all()
        assert (serial.eulers == fanned.eulers).all()
        assert serial.to_lines() == fanned.to_lines()

    def test_invalid_worker_count(self, tiny_receptor, tiny_ligand):
        with pytest.raises(ValueError, match="n_workers"):
            dock_couple(
                tiny_receptor, tiny_ligand, nsep=1, minimize=False, n_workers=0
            )


class TestMaxDoRunBatched:
    def test_checkpoint_resume_with_batched_default(
        self, tiny_receptor, tiny_ligand, tmp_path
    ):
        kw = dict(
            isep_start=1, nsep=2, total_nsep=2, minimize=True, max_iterations=20
        )
        run = MaxDoRun(
            tiny_receptor, tiny_ligand, workdir=tmp_path / "batched", **kw
        )
        assert run.engine == "batched"
        ckpt = run.run(max_positions=1)
        assert not ckpt.complete and ckpt.positions_done == 1
        resumed = MaxDoRun(
            tiny_receptor, tiny_ligand, workdir=tmp_path / "batched", **kw
        )
        assert resumed.run().complete
        batched_text = resumed.finalize().read_text(encoding="ascii")

        ref = MaxDoRun(
            tiny_receptor,
            tiny_ligand,
            workdir=tmp_path / "reference",
            engine="reference",
            **kw,
        )
        ref.run()
        assert batched_text == ref.finalize().read_text(encoding="ascii")


# --- starting-position regressions -------------------------------------


class TestStartingPositionGuards:
    def test_zero_norm_anchor_raises(self, tiny_ligand):
        anchors = np.array([[12.0, 0.0, 0.0], [0.0, 0.0, 0.0]])
        with pytest.raises(ValueError, match="zero-norm anchor"):
            ligand_start_positions(anchors, tiny_ligand)

    def test_real_anchors_still_offset(self, tiny_receptor, tiny_ligand):
        anchors = starting_positions(tiny_receptor, 5)
        offset = ligand_start_positions(anchors, tiny_ligand)
        norms_in = np.linalg.norm(anchors, axis=1)
        norms_out = np.linalg.norm(offset, axis=1)
        np.testing.assert_allclose(
            norms_out - norms_in, tiny_ligand.bounding_radius, rtol=1e-12
        )

    def test_starting_positions_memoized(self, tiny_receptor):
        a = starting_positions(tiny_receptor, 7)
        b = starting_positions(tiny_receptor, 7)
        assert a is b
        assert not a.flags.writeable
        assert starting_positions(tiny_receptor, 8) is not a
