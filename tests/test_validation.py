"""Tests for repro.validation: the three checks and result merging."""

from __future__ import annotations

import numpy as np
import pytest

from repro.maxdo.resultfile import ResultHeader, format_record, write_results
from repro.validation.checks import ValueRanges, check_batch, check_result_file
from repro.validation.merge import dataset_volume, merge_couple_results


def _write(path, isep_start=1, nsep=2, n_couples=3, bad_energy=None, drop_lines=0):
    header = ResultHeader("P1", "P2", isep_start, nsep, n_couples, 10)
    lines = []
    for p in range(nsep):
        for c in range(n_couples):
            e = bad_energy if (bad_energy and p == 0 and c == 0) else -12.5
            lines.append(
                format_record(
                    isep_start + p, c + 1, 1,
                    np.array([10.0, 0.0, 0.0]), np.array([0.1, 0.2, 0.3]),
                    e, 1.5,
                )
            )
    if drop_lines:
        lines = lines[:-drop_lines]
    write_results(path, header, lines)
    return path


class TestCheckResultFile:
    def test_good_file_passes(self, tmp_path):
        report = check_result_file(_write(tmp_path / "a.result"))
        assert report.ok

    def test_wrong_line_count_detected(self, tmp_path):
        report = check_result_file(_write(tmp_path / "a.result", drop_lines=1))
        assert not report.ok
        assert report.files_with_bad_line_count == ["a.result"]

    def test_out_of_range_energy_detected(self, tmp_path):
        report = check_result_file(_write(tmp_path / "a.result", bad_energy=5e6))
        assert not report.ok
        assert "energy out of range" in report.files_with_bad_values["a.result"]

    def test_unreadable_file_detected(self, tmp_path):
        path = tmp_path / "bad.result"
        path.write_text("garbage\n")
        report = check_result_file(path)
        assert not report.ok
        assert "bad.result" in report.files_unreadable


class TestValueRanges:
    def _table(self, tmp_path, **kw):
        from repro.maxdo.resultfile import read_results

        return read_results(_write(tmp_path / "x.result", **kw))

    def test_clean_table(self, tmp_path):
        assert ValueRanges().violations(self._table(tmp_path)) == []

    def test_energy_sum_mismatch(self, tmp_path):
        table = self._table(tmp_path)
        table.records["e_tot"] += 1.0
        assert "energy sum mismatch" in ValueRanges().violations(table)

    def test_nan_detected(self, tmp_path):
        table = self._table(tmp_path)
        table.records["x"][0] = np.nan
        assert "non-finite values" in ValueRanges().violations(table)

    def test_coordinate_out_of_range(self, tmp_path):
        table = self._table(tmp_path)
        table.records["x"][0] = 9999.0
        assert "coordinate out of range" in ValueRanges().violations(table)

    def test_bad_indices(self, tmp_path):
        table = self._table(tmp_path)
        table.records["isep"][0] = 0
        assert "non-positive indices" in ValueRanges().violations(table)


class TestCheckBatch:
    def test_counts_files(self, tmp_path):
        paths = [_write(tmp_path / f"f{i}.result") for i in range(3)]
        report = check_batch(paths, files_expected=3)
        assert report.ok

    def test_missing_file_detected(self, tmp_path):
        paths = [_write(tmp_path / "f0.result")]
        report = check_batch(paths, files_expected=2)
        assert not report.ok
        assert not report.file_count_ok


class TestMerge:
    def test_merge_two_chunks(self, tmp_path):
        a = _write(tmp_path / "a.result", isep_start=1, nsep=2)
        b = _write(tmp_path / "b.result", isep_start=3, nsep=2)
        out = tmp_path / "merged.result"
        n = merge_couple_results([a, b], out)
        assert n == 4 * 3
        report = check_result_file(out)
        assert report.ok

    def test_merge_sorted_by_isep(self, tmp_path):
        from repro.maxdo.resultfile import read_results

        a = _write(tmp_path / "a.result", isep_start=3, nsep=2)
        b = _write(tmp_path / "b.result", isep_start=1, nsep=2)
        out = tmp_path / "m.result"
        merge_couple_results([a, b], out)
        rec = read_results(out).records
        assert (np.diff(rec["isep"]) >= 0).all()

    def test_merge_is_idempotent(self, tmp_path):
        a = _write(tmp_path / "a.result", isep_start=1, nsep=2)
        b = _write(tmp_path / "b.result", isep_start=3, nsep=2)
        m1 = tmp_path / "m1.result"
        merge_couple_results([a, b], m1)
        m2 = tmp_path / "m2.result"
        merge_couple_results([m1], m2)
        assert m1.read_text() == m2.read_text()

    def test_merge_rejects_gap(self, tmp_path):
        a = _write(tmp_path / "a.result", isep_start=1, nsep=2)
        b = _write(tmp_path / "b.result", isep_start=4, nsep=2)
        with pytest.raises(ValueError, match="gap"):
            merge_couple_results([a, b], tmp_path / "m.result")

    def test_merge_rejects_overlap(self, tmp_path):
        a = _write(tmp_path / "a.result", isep_start=1, nsep=3)
        b = _write(tmp_path / "b.result", isep_start=3, nsep=2)
        with pytest.raises(ValueError, match="overlap"):
            merge_couple_results([a, b], tmp_path / "m.result")

    def test_merge_rejects_mixed_couples(self, tmp_path):
        a = _write(tmp_path / "a.result", isep_start=1, nsep=2)
        header = ResultHeader("P9", "P2", 3, 1, 3, 10)
        other = tmp_path / "other.result"
        write_results(other, header, [])
        with pytest.raises(ValueError, match="cannot merge"):
            merge_couple_results([a, other], tmp_path / "m.result")

    def test_merge_rejects_empty_list(self, tmp_path):
        with pytest.raises(ValueError):
            merge_couple_results([], tmp_path / "m.result")


class TestDatasetVolume:
    def test_phase1_volume(self, phase1_library):
        v = dataset_volume(phase1_library)
        assert v.n_files == 168 * 168
        # Paper: 123 GB raw, 45 GB compressed.
        assert v.raw_bytes == pytest.approx(123e9, rel=0.03)
        assert v.compressed_bytes == pytest.approx(45e9, rel=0.03)

    def test_scales_with_library(self, small_library):
        v = dataset_volume(small_library)
        assert v.n_files == 144
        assert v.raw_bytes < 1e9
