"""Run the doctests embedded in the public API docstrings.

Docstrings with ``>>>`` examples are part of the documented contract; this
test keeps them honest.
"""

from __future__ import annotations

import doctest

import pytest

import repro.core.metrics
import repro.core.projection
import repro.grid.des
import repro.rng
import repro.units

MODULES = [
    repro.units,
    repro.rng,
    repro.core.metrics,
    repro.core.projection,
    repro.grid.des,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    failures, tested = doctest.testmod(
        module, verbose=False, raise_on_error=False
    ).failed, doctest.testmod(module, verbose=False).attempted
    assert tested > 0, f"{module.__name__} lost its doctest examples"
    assert failures == 0
