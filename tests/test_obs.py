"""Tests for repro.obs: tracing, metrics registry, profiling, replay."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.boinc.simulator import Telemetry, scaled_phase1
from repro.obs import (
    EVENT_TYPES,
    TRACE_SCHEMA_VERSION,
    MetricsRegistry,
    Profiler,
    RingSink,
    TraceEvent,
    Tracer,
    channel_of,
    format_timeline,
    global_tracer,
    read_trace,
    summarize_trace,
    tracing,
)


class _ExplodingSink:
    """A sink that must never be touched (disabled-cost contract)."""

    def append(self, event):  # pragma: no cover - the point is not reaching it
        raise AssertionError("disabled tracer touched its sink")

    def close(self):
        pass


class TestTracer:
    def test_emit_records_and_counts(self):
        tracer = Tracer()
        tracer.emit("server.issue", t_sim=10.0, wu=1, host=2)
        tracer.emit("server.issue", t_sim=11.0, wu=1, host=3)
        assert tracer.counts["server.issue"] == 2
        assert tracer.n_events == 2
        events = tracer.sink.events
        assert events[0].etype == "server.issue"
        assert events[0].channel == "server"
        assert events[0].t_sim == 10.0
        assert events[0].fields == {"wu": 1, "host": 2}

    def test_disabled_is_inert(self):
        """The enable/disable contract: a disabled tracer records nothing
        and never reaches the sink, the counts or the clock."""
        tracer = Tracer(sink=_ExplodingSink(), enabled=False)
        for _ in range(100):
            tracer.emit("server.issue", t_sim=0.0, wu=1, host=1)
        assert tracer.n_events == 0
        assert not tracer.counts

    def test_disabled_constructor(self):
        assert not Tracer.disabled().enabled

    def test_unknown_event_type_rejected(self):
        with pytest.raises(ValueError, match="unknown event type"):
            Tracer().emit("server.nonsense")

    def test_reserved_field_keys_rejected(self):
        with pytest.raises(ValueError, match="reserved"):
            Tracer().emit("server.issue", type="oops")

    def test_channel_filter(self):
        tracer = Tracer(channels=["server"])
        tracer.emit("server.issue", wu=1)
        tracer.emit("agent.fetch", host=1)  # filtered out
        assert tracer.counts == {"server.issue": 1}

    def test_ring_capacity_bounds_memory_not_counts(self):
        tracer = Tracer(sink=RingSink(capacity=5))
        for i in range(20):
            tracer.emit("des.fire", t_sim=float(i), callback="f")
        assert len(tracer.sink) == 5
        assert tracer.counts["des.fire"] == 20
        # the ring keeps the most recent events
        assert [e.t_sim for e in tracer.sink] == [15.0, 16.0, 17.0, 18.0, 19.0]

    def test_global_tracer_scoping(self):
        assert global_tracer() is None
        with tracing(Tracer()) as tr:
            assert global_tracer() is tr
            with tracing(Tracer()) as inner:
                assert global_tracer() is inner
            assert global_tracer() is tr
        assert global_tracer() is None


class TestJsonlRoundTrip:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with Tracer.to_jsonl(path) as tracer:
            tracer.emit("server.issue", t_sim=5.0, wu=3, host=7)
            tracer.emit("agent.fetch", t_sim=6.5, host=7, wu=3)
            tracer.emit("docking.engine", engine="batched", n_workers=2)
        events = read_trace(path)
        assert [e.etype for e in events] == [
            "server.issue", "agent.fetch", "docking.engine",
        ]
        assert events[0].t_sim == 5.0
        assert events[0].fields == {"wu": 3, "host": 7}
        assert events[2].t_sim is None  # docking events are wall-clock only
        assert events[2].fields["engine"] == "batched"

    def test_schema_version_stamped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with Tracer.to_jsonl(path) as tracer:
            tracer.emit("server.issue", wu=1, host=1)
        doc = json.loads(path.read_text().splitlines()[0])
        assert doc["v"] == TRACE_SCHEMA_VERSION
        assert doc["type"] == "server.issue"
        assert doc["ch"] == "server"

    def test_unknown_schema_version_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"v": 999, "type": "server.issue"}) + "\n")
        with pytest.raises(ValueError, match="schema version"):
            read_trace(path)


class TestMetricsRegistry:
    def test_counter(self):
        reg = MetricsRegistry()
        c = reg.counter("x.total")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge(self):
        g = MetricsRegistry().gauge("x.depth")
        g.set(4)
        g.inc()
        g.dec(2)
        assert g.value == 3.0

    def test_histogram_le_semantics(self):
        h = MetricsRegistry().histogram("x.hours", buckets=(1.0, 4.0, 8.0))
        for v in (0.5, 1.0, 3.0, 9.0):
            h.observe(v)
        # le-1.0 gets 0.5 and 1.0; le-4.0 gets 3.0; +inf gets 9.0
        assert list(h.bucket_counts) == [2, 1, 0, 1]
        assert h.count == 4
        assert h.mean == pytest.approx(13.5 / 4)

    def test_histogram_bad_buckets(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.histogram("a", buckets=())
        with pytest.raises(ValueError):
            reg.histogram("b", buckets=(2.0, 1.0))

    def test_daily_series(self):
        s = MetricsRegistry().daily_series("x.daily", n_days=3, dtype=np.int64)
        s.add(0)
        s.add(2, 5)
        assert s.values.tolist() == [1, 0, 5]
        with pytest.raises(IndexError):
            s.add(3)

    def test_get_or_create_and_type_guard(self):
        reg = MetricsRegistry()
        assert reg.counter("x.total") is reg.counter("x.total")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("x.total")

    def test_as_dict_is_json_safe(self):
        reg = MetricsRegistry()
        reg.counter("b.count").inc()
        reg.histogram("a.hist", buckets=(1.0,)).observe(2.0)
        doc = json.loads(json.dumps(reg.as_dict()))
        assert list(doc) == ["a.hist", "b.count"]  # sorted names
        assert doc["b.count"]["kind"] == "counter"
        assert doc["a.hist"]["bucket_counts"] == [0, 1]


class TestProfiler:
    def test_record_and_timed(self):
        prof = Profiler()
        prof.record("a", 0.5)
        prof.record("a", 1.5)
        with prof.timed("b"):
            pass
        stats = prof.stats()
        assert stats["a"] == (2, 2.0)
        assert stats["b"][0] == 1 and stats["b"][1] >= 0.0
        assert prof.summary_rows()[0][0] == "a"  # heaviest first
        assert "a" in prof.render()

    def test_to_dict_matches_render_order(self):
        prof = Profiler()
        prof.record("light", 0.25)
        prof.record("heavy", 2.0)
        prof.record("heavy", 2.0)
        doc = json.loads(json.dumps(prof.to_dict()))  # JSON-safe
        assert doc["total_seconds"] == pytest.approx(4.25)
        assert [s["section"] for s in doc["sections"]] == ["heavy", "light"]
        heavy = doc["sections"][0]
        assert heavy["calls"] == 2
        assert heavy["total_s"] == pytest.approx(4.0)
        assert heavy["mean_ms"] == pytest.approx(2000.0)


class TestTelemetryOnRegistry:
    def test_daily_buckets_unchanged(self):
        t = Telemetry(horizon_s=14 * 86400.0)
        t.record_result(0.5 * 86400, 100.0)
        t.record_result(1.5 * 86400, 200.0)
        assert t.daily_results[0] == 1
        assert t.daily_cpu_s[1] == 200.0

    def test_registry_holds_every_series(self):
        t = Telemetry(horizon_s=7 * 86400.0)
        t.record_result(0.0, 10.0)
        t.record_validation(0.0)
        t.record_credit(2.0)
        t.record_shipment(10.0, 1024)
        t.record_workunit_run(20.0, 13 * 3600.0, 3.3 * 3600.0)
        doc = t.registry.as_dict()
        assert doc["campaign.daily_results"]["values"][0] == 1
        assert doc["campaign.daily_useful"]["values"][0] == 1
        assert doc["campaign.claimed_credit_points"]["value"] == 2.0
        assert doc["campaign.shipped_bytes"]["value"] == 1024
        assert doc["campaign.run_active_hours"]["count"] == 1
        assert t.total_claimed_credit == 2.0

    def test_clamp_is_counted_and_traced(self):
        tracer = Tracer()
        t = Telemetry(horizon_s=7 * 86400.0, tracer=tracer)
        t.record_result(1e9, 1.0)  # far beyond the horizon
        assert t.daily_results[-1] == 1  # still lands in the edge bucket
        assert t.clamped_samples == 1
        assert tracer.counts["telemetry.clamp"] == 1
        event = tracer.sink.events[0]
        assert event.t_sim == 1e9
        assert event.fields["day"] > event.fields["horizon_days"]

    def test_in_horizon_samples_not_clamped(self):
        t = Telemetry(horizon_s=7 * 86400.0)
        t.record_result(3 * 86400.0, 1.0)
        assert t.clamped_samples == 0


class TestCampaignTraceReconciliation:
    """A traced scaled campaign's event counts match CampaignResult."""

    @pytest.fixture(scope="class")
    def traced(self):
        tracer = Tracer(sink=RingSink(capacity=1024))
        result = scaled_phase1(scale=700, n_proteins=6, tracer=tracer).run()
        return tracer, result

    def test_result_events_match_disclosed(self, traced):
        tracer, result = traced
        m = result.metrics()
        assert tracer.counts["server.result"] == m.results_disclosed
        assert tracer.counts["agent.report"] == m.results_disclosed

    def test_validation_events_match_effective(self, traced):
        tracer, result = traced
        assert tracer.counts["server.validate"] == result.metrics().results_effective
        assert tracer.counts["server.release"] == result.server.n_workunits
        assert tracer.counts["server.campaign_complete"] == 1

    def test_batch_events_match_shipments(self, traced):
        tracer, result = traced
        assert (
            tracer.counts["server.batch_complete"]
            == len(result.telemetry.shipments)
        )

    def test_des_fire_matches_kernel_counter(self, traced):
        tracer, result = traced
        assert tracer.counts["des.fire"] == result.server.sim.events_processed

    def test_issue_covers_fetch_and_reissues(self, traced):
        tracer, result = traced
        assert tracer.counts["server.issue"] == tracer.counts["agent.fetch"]

    def test_tracing_does_not_perturb_the_trajectory(self, traced):
        _, result = traced
        baseline = scaled_phase1(scale=700, n_proteins=6).run()
        assert result.completion_time == baseline.completion_time
        assert (
            result.server.stats.disclosed == baseline.server.stats.disclosed
        )
        np.testing.assert_array_equal(
            result.telemetry.daily_results, baseline.telemetry.daily_results
        )

    def test_export_carries_the_registry(self, traced, tmp_path):
        _, result = traced
        result.export(tmp_path)
        doc = json.loads((tmp_path / "metrics.json").read_text())
        registry = doc["registry"]
        assert (
            sum(registry["campaign.daily_results"]["values"])
            == result.metrics().results_disclosed
        )
        assert registry["telemetry.clamped_samples"]["value"] == float(
            result.telemetry.clamped_samples
        )

    def test_export_with_profiler_writes_profile_json(self, traced, tmp_path):
        _, result = traced
        prof = Profiler()
        prof.record("des.tick", 1.5)
        paths = result.export(tmp_path, profiler=prof)
        assert (tmp_path / "profile.json") in paths
        doc = json.loads((tmp_path / "profile.json").read_text())
        assert doc["total_seconds"] == pytest.approx(1.5)
        assert doc["sections"][0]["section"] == "des.tick"


class TestDesCallbackNames:
    """des.* events and profiler sections name the real call sites —
    the agent's continuation chain is bound methods, not lambdas."""

    @pytest.fixture(scope="class")
    def instrumented(self):
        tracer = Tracer(channels=["des"])
        profiler = Profiler()
        scaled_phase1(
            scale=700, n_proteins=6, tracer=tracer, profiler=profiler
        ).run()
        return tracer, profiler

    def test_no_lambda_callbacks_in_trace(self, instrumented):
        tracer, _ = instrumented
        names = {e.fields["callback"] for e in tracer.sink.events}
        assert names  # the campaign did trace des events
        assert not [n for n in names if "<lambda>" in n]

    def test_availability_waits_attributed_to_when_available(self, instrumented):
        tracer, _ = instrumented
        names = {e.fields["callback"] for e in tracer.sink.events}
        assert "VolunteerAgent._when_available" in names
        assert "GridServer._on_timeout" in names

    def test_profiler_sections_are_named(self, instrumented):
        _, profiler = instrumented
        sections = [name for name in profiler.stats() if name.startswith("des.")]
        assert "des.VolunteerAgent._when_available" in sections
        assert not [s for s in sections if "<lambda>" in s]


class TestReplay:
    def _events(self):
        tracer = Tracer()
        tracer.emit("server.issue", t_sim=0.0, wu=1, host=2)
        tracer.emit("server.issue", t_sim=86400.0, wu=2, host=3)
        tracer.emit("agent.fetch", t_sim=86400.0, host=3, wu=2)
        tracer.emit("docking.engine", engine="batched", n_workers=1)
        return tracer.sink.events

    def test_summarize(self):
        summary = summarize_trace(self._events())
        assert summary.n_events == 4
        assert summary.by_type["server.issue"] == 2
        assert summary.by_channel == {"server": 2, "agent": 1, "docking": 1}
        assert summary.sim_span_days == pytest.approx(1.0)
        assert summary.rows()[0][0] == "agent.fetch"  # channel-sorted

    def test_timeline_filter_and_limit(self):
        events = self._events()
        lines = format_timeline(events, channel="server")
        assert len(lines) == 2 and all("server.issue" in l for l in lines)
        lines = format_timeline(events, limit=2)
        assert len(lines) == 3  # head + ellipsis + tail
        assert "elided" in lines[1]

    def test_filter_by_workunit(self):
        from repro.obs.replay import filter_events

        only = list(filter_events(self._events(), workunit=2))
        assert [e.etype for e in only] == ["server.issue", "agent.fetch"]
        assert all(e.fields["wu"] == 2 for e in only)

    def test_filter_by_host_drops_fieldless_events(self):
        from repro.obs.replay import filter_events

        only = list(filter_events(self._events(), host=3))
        assert len(only) == 2
        # the docking.engine event carries no host field: dropped
        assert all(e.fields.get("host") == 3 for e in only)

    def test_filters_compose(self):
        from repro.obs.replay import filter_events

        only = list(
            filter_events(self._events(), channel="server", workunit=1)
        )
        assert len(only) == 1 and only[0].fields == {"wu": 1, "host": 2}

    def test_filter_by_campaign_drops_unstamped_events(self):
        from repro.obs.replay import filter_events

        tracer = Tracer()
        tracer.emit("server.issue", t_sim=0.0, wu=1, host=2, campaign="hcmd")
        tracer.emit("server.issue", t_sim=1.0, wu=9, host=2, campaign="other")
        tracer.emit("agent.fetch", t_sim=1.0, host=2, wu=1)  # host-level: no stamp
        only = list(filter_events(tracer.sink.events, campaign="hcmd"))
        assert [e.fields["wu"] for e in only] == [1]
        # composes with the other selectors
        assert not list(
            filter_events(tracer.sink.events, campaign="hcmd", workunit=9)
        )

    def test_timeline_streams_with_bounded_memory(self):
        """format_timeline accepts a one-shot generator and keeps only
        head + tail lines resident."""
        def stream():
            tracer = Tracer()
            for i in range(100):
                tracer.emit("des.fire", t_sim=float(i), callback="f")
            yield from tracer.sink.events

        lines = format_timeline(stream(), limit=10)
        assert len(lines) == 11  # 5 head + ellipsis + 5 tail
        assert "90 events elided" in lines[5]

    def test_channel_of(self):
        assert channel_of("server.issue") == "server"

    def test_every_event_type_has_a_channelful_name(self):
        for etype in EVENT_TYPES:
            assert "." in etype and channel_of(etype)


class TestTraceCli:
    def test_trace_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "t.jsonl"
        with Tracer.to_jsonl(path) as tracer:
            tracer.emit("server.issue", t_sim=0.0, wu=1, host=2)
            tracer.emit("server.validate", t_sim=3600.0, wu=1, regime="quorum")
        assert main(["trace", str(path), "--limit", "5"]) == 0
        out = capsys.readouterr().out
        assert "server.issue" in out
        assert "server.validate" in out
        assert "regime=quorum" in out

    def test_simulate_trace_flag(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "campaign.jsonl"
        code = main([
            "simulate", "--scale", "700", "--proteins", "6",
            "--trace", str(path), "--trace-channels", "server,telemetry",
        ])
        assert code == 0
        events = read_trace(path)
        assert events and all(
            e.channel in ("server", "telemetry") for e in events
        )
        assert "repro-hcmd trace" in capsys.readouterr().out

    def _lifecycle_trace(self, path, host=2):
        with Tracer.to_jsonl(path) as tracer:
            tracer.emit("server.release", t_sim=0.0, wu=1, batch=0)
            tracer.emit("server.issue", t_sim=10.0, wu=1, host=host, copy=0)
            tracer.emit("agent.fetch", t_sim=20.0, wu=1, host=host, copy=0)
            tracer.emit("server.issue", t_sim=10.0, wu=2, host=9, copy=0)
            tracer.emit(
                "server.result", t_sim=50.0, wu=1, host=host, copy=0,
                valid=True,
            )
            tracer.emit("server.validate", t_sim=60.0, wu=1, regime="quorum")
        return path

    def test_trace_workunit_filter(self, tmp_path, capsys):
        from repro.cli import main

        path = self._lifecycle_trace(tmp_path / "t.jsonl")
        assert main(["trace", str(path), "--workunit", "1"]) == 0
        out = capsys.readouterr().out
        assert "workunit=1" in out  # the selection row
        assert "wu=1" in out
        assert "wu=2" not in out

    def test_trace_host_filter(self, tmp_path, capsys):
        from repro.cli import main

        path = self._lifecycle_trace(tmp_path / "t.jsonl")
        assert main(["trace", str(path), "--host", "9"]) == 0
        out = capsys.readouterr().out
        assert "host=9" in out
        assert "wu=1" not in out

    def test_trace_diff_identical_exit_zero(self, tmp_path, capsys):
        from repro.cli import main

        a = self._lifecycle_trace(tmp_path / "a.jsonl")
        b = self._lifecycle_trace(tmp_path / "b.jsonl")
        assert main(["trace", "diff", str(a), str(b)]) == 0
        assert "agree" in capsys.readouterr().out

    def test_trace_diff_divergent_exit_one(self, tmp_path, capsys):
        from repro.cli import main

        a = self._lifecycle_trace(tmp_path / "a.jsonl")
        b = self._lifecycle_trace(tmp_path / "b.jsonl", host=5)
        assert main(["trace", "diff", str(a), str(b)]) == 1
        out = capsys.readouterr().out
        assert "diverge" in out
        assert "hosts" in out

    def test_trace_diff_usage_errors(self, tmp_path, capsys):
        from repro.cli import main

        a = self._lifecycle_trace(tmp_path / "a.jsonl")
        assert main(["trace", "diff", str(a)]) == 2
        assert main(["trace", str(a), str(a)]) == 2

    def test_report_trace_markdown(self, tmp_path, capsys):
        from repro.cli import main

        path = self._lifecycle_trace(tmp_path / "t.jsonl")
        assert main(["report", "--trace", str(path), "--markdown"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("# Campaign post-mortem")
        assert "## Summary" in out
