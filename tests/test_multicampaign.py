"""The multi-campaign grid engine (repro.multi).

The two load-bearing contracts:

* **single-campaign identity** — a grid with exactly one registered
  cross-docking campaign IS the monolithic engine: the delegation path
  is bit-identical (including the full event trace), and even the forced
  router path reproduces the identical statistics, because the router
  adds no randomness of its own;
* **deterministic lifecycle** — mid-run admission and draining replay
  identically run to run, and campaigns receive no issues outside their
  [submit, drain) window.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.boinc.simulator import scaled_phase1
from repro.multi import (
    Campaign,
    GridConfig,
    MultiGridSimulation,
    WU_ID_STRIDE,
)
from repro.obs import RingSink, Tracer
from repro.units import weeks

SCALE, N_PROTEINS, SEED = 900.0, 5, 42


def _single_grid(**overrides) -> GridConfig:
    base = dict(
        campaigns=(
            Campaign.cross_docking("hcmd", scale=SCALE, n_proteins=N_PROTEINS),
        ),
        seed=SEED,
        horizon_weeks=40.0,
    )
    base.update(overrides)
    return GridConfig(**base)


def _two_campaign_grid(submit_week: float = 2.0) -> GridConfig:
    return GridConfig(
        campaigns=(
            Campaign.cross_docking("hcmd", scale=SCALE, n_proteins=N_PROTEINS),
            Campaign.screening(
                "malaria", n_ligands=120, mean_hours=1.0,
                batch_size=20, submit_week=submit_week,
            ),
        ),
        seed=7,
        horizon_weeks=40.0,
        n_hosts_peak=12,
    )


@pytest.fixture(scope="module")
def monolithic_reference():
    return scaled_phase1(scale=SCALE, n_proteins=N_PROTEINS, seed=SEED).run()


class TestSingleCampaignIdentity:
    def test_single_cross_docking_campaign_delegates(self):
        assert MultiGridSimulation(_single_grid()).delegates_to_monolithic

    def test_lifecycle_or_screening_disables_delegation(self):
        late = _single_grid(campaigns=(
            Campaign.cross_docking(
                "hcmd", scale=SCALE, n_proteins=N_PROTEINS, submit_week=1.0
            ),
        ))
        assert not MultiGridSimulation(late).delegates_to_monolithic
        screening = GridConfig(campaigns=(Campaign.screening("s"),))
        assert not MultiGridSimulation(screening).delegates_to_monolithic

    def test_delegation_is_bit_identical(self, monolithic_reference):
        result = MultiGridSimulation(_single_grid()).run()["hcmd"]
        ref = monolithic_reference
        assert result.completion_time == ref.completion_time
        assert result.server.stats == ref.server.stats
        assert result.n_hosts == ref.n_hosts
        np.testing.assert_array_equal(
            result.telemetry.daily_cpu_s, ref.telemetry.daily_cpu_s
        )

    def test_forced_router_path_matches_monolithic(self, monolithic_reference):
        sim = MultiGridSimulation(_single_grid(), force_router=True)
        assert not sim.delegates_to_monolithic
        routed = sim.run()["hcmd"]
        ref = monolithic_reference
        assert routed.server.stats == ref.server.stats
        assert routed.completion_time == ref.completion_time
        assert routed.n_hosts == ref.n_hosts
        np.testing.assert_array_equal(
            routed.telemetry.daily_cpu_s, ref.telemetry.daily_cpu_s
        )

    def test_delegation_trace_identical_under_full_tracing(self):
        def run_traced(run):
            ring = RingSink(capacity=2_000_000)
            run(Tracer(sink=ring))
            return [
                (e.etype, e.t_sim, e.fields) for e in ring.events
            ]

        mono = run_traced(
            lambda tr: scaled_phase1(
                scale=SCALE, n_proteins=N_PROTEINS, seed=SEED, tracer=tr
            ).run()
        )
        multi = run_traced(
            lambda tr: MultiGridSimulation(_single_grid(), tracer=tr).run()
        )
        assert mono == multi

    def test_grid_result_reconciles_with_campaign(self):
        grid = MultiGridSimulation(_single_grid()).run()
        assert grid.completion_time == grid["hcmd"].completion_time
        assert grid.merged_stats() == grid["hcmd"].server.stats
        assert grid.issued_share() == {"hcmd": 1.0}


class TestDeterminism:
    def test_midrun_submission_replays_identically(self):
        a = MultiGridSimulation(_two_campaign_grid()).run()
        b = MultiGridSimulation(_two_campaign_grid()).run()
        assert list(a.campaigns) == list(b.campaigns)
        for name in a.campaigns:
            assert a[name].server.stats == b[name].server.stats
            assert a[name].completion_time == b[name].completion_time
        assert a.issued_share() == b.issued_share()

    def test_workunit_id_namespaces_are_strided(self):
        ring = RingSink(capacity=500_000)
        tracer = Tracer(sink=ring, channels=("server",))
        MultiGridSimulation(_two_campaign_grid(), tracer=tracer).run()
        issued: dict[str, set[int]] = {}
        for e in ring.events:
            if e.etype == "server.issue":
                issued.setdefault(e.fields["campaign"], set()).add(
                    e.fields["wu"]
                )
        assert all(i < WU_ID_STRIDE for i in issued["hcmd"])
        assert all(
            WU_ID_STRIDE <= i < 2 * WU_ID_STRIDE for i in issued["malaria"]
        )


class TestLifecycle:
    def test_no_issues_before_submit_week(self):
        ring = RingSink(capacity=500_000)
        tracer = Tracer(sink=ring, channels=("grid", "server"))
        MultiGridSimulation(_two_campaign_grid(), tracer=tracer).run()
        admits = [e for e in ring.events if e.etype == "grid.admit"]
        by_campaign = {e.fields["campaign"]: e.t_sim for e in admits}
        assert by_campaign["hcmd"] == 0.0
        assert by_campaign["malaria"] == weeks(2.0)
        malaria_issues = [
            e.t_sim
            for e in ring.events
            if e.etype == "server.issue" and e.fields.get("campaign") == "malaria"
        ]
        assert malaria_issues
        assert min(malaria_issues) >= weeks(2.0)

    def test_drain_stops_new_issues(self):
        config = GridConfig(
            campaigns=(
                Campaign.cross_docking(
                    "hcmd", scale=SCALE, n_proteins=N_PROTEINS
                ),
                Campaign.screening(
                    "malaria", n_ligands=5_000, mean_hours=1.0,
                    drain_week=4.0,
                ),
            ),
            seed=7,
            horizon_weeks=20.0,
            n_hosts_peak=12,
        )
        ring = RingSink(capacity=500_000)
        tracer = Tracer(sink=ring, channels=("grid", "server"))
        result = MultiGridSimulation(config, tracer=tracer).run()
        drains = [e for e in ring.events if e.etype == "grid.drain"]
        assert [e.fields["campaign"] for e in drains] == ["malaria"]
        t_drain = drains[0].t_sim
        assert t_drain == weeks(4.0)
        malaria_issues = [
            e.t_sim
            for e in ring.events
            if e.etype == "server.issue" and e.fields.get("campaign") == "malaria"
        ]
        assert malaria_issues
        assert max(malaria_issues) <= t_drain
        # 5000 h of screening cannot finish in 4 weeks on 12 hosts; the
        # drain parks it incomplete while hcmd runs to completion.
        assert result["malaria"].completion_time is None
        assert result["hcmd"].completion_time is not None

    def test_completion_events_emitted_once_per_campaign(self):
        ring = RingSink(capacity=500_000)
        tracer = Tracer(sink=ring, channels=("grid",))
        result = MultiGridSimulation(_two_campaign_grid(), tracer=tracer).run()
        completes = [e for e in ring.events if e.etype == "grid.complete"]
        assert sorted(e.fields["campaign"] for e in completes) == [
            "hcmd", "malaria",
        ]
        for e in completes:
            assert e.fields["validated"] == (
                result[e.fields["campaign"]].server.n_validated
            )


class TestQuota:
    def test_quota_caps_share_of_issued_work(self):
        config = GridConfig(
            campaigns=(
                Campaign.screening(
                    "capped", n_ligands=400, mean_hours=1.0,
                    batch_size=50, quota_fraction=0.25,
                ),
                Campaign.screening(
                    "open", n_ligands=400, mean_hours=1.0, batch_size=50,
                ),
            ),
            seed=11,
            horizon_weeks=4.0,
            n_hosts_peak=12,
        )
        result = MultiGridSimulation(config).run()
        shares = result.issued_share()
        # Both campaigns stay hungry for the whole horizon, so the quota
        # binds: the capped campaign's share sits at ~0.25 (slack for
        # issue granularity), and the grid stays work-conserving.
        assert shares["capped"] <= 0.35
        assert shares["capped"] + shares["open"] == pytest.approx(1.0)
