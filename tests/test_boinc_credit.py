"""Tests for repro.boinc.credit: UD/BOINC accounting and the points system."""

from __future__ import annotations

import numpy as np
import pytest

from repro import constants as C
from repro.boinc.credit import (
    AccountingMode,
    CobblestoneScale,
    HostBenchmark,
    accounted_seconds,
    claimed_credit,
    vftp_from_credit,
)
from repro.boinc.simulator import scaled_phase1
from repro.grid.availability import AvailabilityTrace
from repro.grid.host import HostSpec


def _spec(speed=1.0, duty=0.5):
    return HostSpec(
        host_id=0, speed=speed, duty_cycle=duty, reliability=1.0,
        abandon_prob=0.0, report_delay_mean_s=1.0,
        trace=AvailabilityTrace(np.array([0.0]), np.array([1e6]), 1e6),
    )


class TestAccountedSeconds:
    def test_ud_bills_wall_clock(self):
        # The UD agent "measures wall clock time rather than actual
        # process execution time" (Section 6).
        assert accounted_seconds(_spec(duty=0.5), 1000.0, AccountingMode.UD_WALL_CLOCK) == 1000.0

    def test_boinc_bills_cpu_time(self):
        assert accounted_seconds(_spec(duty=0.5), 1000.0, AccountingMode.BOINC_CPU_TIME) == 500.0

    def test_ud_overstates_boinc(self):
        spec = _spec(duty=0.6 * 0.5)
        wall = 8 * 3600.0
        ud = accounted_seconds(spec, wall, AccountingMode.UD_WALL_CLOCK)
        boinc = accounted_seconds(spec, wall, AccountingMode.BOINC_CPU_TIME)
        # "a computer ... that runs a workunit for 8 hours of wall clock
        # time will at most only actually process work for 4.8 hours" —
        # with contention it is less still.
        assert ud == wall
        assert boinc < 0.6 * wall

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            accounted_seconds(_spec(), -1.0, AccountingMode.UD_WALL_CLOCK)


class TestClaimedCredit:
    def test_boinc_credit_measures_reference_work(self):
        # With CPU-time accounting and an exact benchmark, claimed credit
        # equals the reference work done, regardless of host speed.
        scale = CobblestoneScale()
        reference_work = 7200.0  # 2 reference-hours
        for speed in (0.5, 1.0, 2.0):
            spec = _spec(speed=speed, duty=0.7)
            wall = reference_work / spec.progress_rate
            credit = claimed_credit(
                spec, wall, AccountingMode.BOINC_CPU_TIME,
                HostBenchmark(host_speed=speed), scale,
            )
            expected = reference_work / 86_400 * scale.points_per_reference_day
            assert credit == pytest.approx(expected)

    def test_ud_credit_inflated_by_throttle(self):
        spec = _spec(speed=1.0, duty=0.5)
        wall = 1000.0
        ud = claimed_credit(
            spec, wall, AccountingMode.UD_WALL_CLOCK, HostBenchmark(1.0)
        )
        boinc = claimed_credit(
            spec, wall, AccountingMode.BOINC_CPU_TIME, HostBenchmark(1.0)
        )
        assert ud == pytest.approx(boinc / spec.duty_cycle)

    def test_benchmark_bias_scales_claim(self):
        spec = _spec()
        base = claimed_credit(
            spec, 100.0, AccountingMode.BOINC_CPU_TIME, HostBenchmark(1.0, 1.0)
        )
        biased = claimed_credit(
            spec, 100.0, AccountingMode.BOINC_CPU_TIME, HostBenchmark(1.0, 1.1)
        )
        assert biased == pytest.approx(1.1 * base)

    def test_benchmark_validation(self):
        with pytest.raises(ValueError):
            HostBenchmark(host_speed=0.0)


class TestVftpFromCredit:
    def test_reference_processor_is_one_vftp(self):
        scale = CobblestoneScale()
        points = scale.points_per_reference_day * 7  # a reference week
        assert vftp_from_credit(points, 7 * 86_400.0, scale) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            vftp_from_credit(10.0, 0.0)
        with pytest.raises(ValueError):
            vftp_from_credit(-1.0, 10.0)
        with pytest.raises(ValueError):
            CobblestoneScale(points_per_reference_day=0.0)


class TestCampaignAccounting:
    """Section 8's claim, measured: points-based VFTP tracks true useful
    throughput far better than run-time-based VFTP, and is nearly
    middleware independent."""

    @pytest.fixture(scope="class")
    def campaigns(self):
        out = {}
        for mode in AccountingMode:
            sim = scaled_phase1(
                scale=250, n_proteins=12, accounting=mode
            )
            out[mode] = sim.run()
        return out

    def test_ud_runtime_vftp_overstates(self, campaigns):
        res = campaigns[AccountingMode.UD_WALL_CLOCK]
        runtime_vftp = res.metrics().vftp
        truth = res.vftp_from_useful_work()
        assert runtime_vftp > 2.5 * truth  # the ~4x UD bias

    def test_boinc_runtime_vftp_closer(self, campaigns):
        ud = campaigns[AccountingMode.UD_WALL_CLOCK]
        boinc = campaigns[AccountingMode.BOINC_CPU_TIME]
        ud_err = ud.metrics().vftp / ud.vftp_from_useful_work()
        boinc_err = boinc.metrics().vftp / boinc.vftp_from_useful_work()
        # "BOINC measures run time more accurately than UD."
        assert boinc_err < ud_err

    def test_points_vftp_nearly_middleware_independent(self, campaigns):
        estimates = {
            mode: res.vftp_from_credit() / res.vftp_from_useful_work()
            for mode, res in campaigns.items()
        }
        # With BOINC accounting, points estimate the true throughput to
        # within redundancy + benchmark bias...
        assert estimates[AccountingMode.BOINC_CPU_TIME] == pytest.approx(
            C.REDUNDANCY_FACTOR, rel=0.25
        )
        # ...while UD runtime accounting overstates by ~2x between the
        # middlewares (the "differences ... in what represents a virtual
        # full-time processor" of Section 8).
        ud_run = campaigns[AccountingMode.UD_WALL_CLOCK].metrics().vftp
        boinc_run = campaigns[AccountingMode.BOINC_CPU_TIME].metrics().vftp
        assert ud_run / boinc_run > 1.6

    def test_points_remove_device_speed_dependence(self):
        """The paper expects the points approach to 'allow us to observe
        the trend toward more powerful processors': with runtime
        accounting, slower devices inflate the reported VFTP per unit of
        useful work; with points, the estimate is speed-invariant."""
        results = {}
        for label, median in (("slow", 0.55), ("fast", 1.4)):
            sim = scaled_phase1(scale=250, n_proteins=12,
                                accounting=AccountingMode.BOINC_CPU_TIME)
            sim.host_model = sim.host_model.with_profile(speed_median=median)
            results[label] = sim.run()
        ratios = {
            k: r.vftp_from_credit() / r.vftp_from_useful_work()
            for k, r in results.items()
        }
        runtime_ratios = {
            k: r.metrics().vftp / r.vftp_from_useful_work()
            for k, r in results.items()
        }
        # Points per useful work: same for slow and fast fleets (~redundancy).
        assert ratios["slow"] == pytest.approx(ratios["fast"], rel=0.10)
        # Runtime per useful work: strongly speed-dependent.
        assert runtime_ratios["slow"] > 1.5 * runtime_ratios["fast"]
