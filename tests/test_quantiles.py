"""Property tests for repro.obs.quantiles: small-n exactness and merging.

The sketch's accuracy contract has two regimes the campaign-trace tests
in ``tests/test_obs_spans.py`` only sample: **exactness** while the
warm-up buffer is live (including the n < 5 initialization window of the
raw P² estimators, and the hand-over when the buffer is outgrown), and
**merge equivalence** — the property the host ledger's shard-mergeable
turnaround sketches rest on: merging shard-local sketches must be
state-identical to one sketch having folded the shards back to back.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.quantiles import P2Quantile, QuantileSketch

QUANTILES = (0.5, 0.9, 0.99)

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
sample_lists = st.lists(finite, min_size=1, max_size=64)


class TestSmallNExactness:
    @given(sample_lists)
    @settings(max_examples=200)
    def test_warmup_estimates_match_numpy_quantile(self, values):
        """While the warm-up buffer is live, estimates are exact — the
        same linear interpolation as ``numpy.quantile``."""
        sketch = QuantileSketch("t", quantiles=QUANTILES)
        for value in values:
            sketch.observe(value)
        assert sketch.exact
        for q in QUANTILES:
            expected = float(np.quantile(np.asarray(values, dtype=float), q))
            assert sketch.estimate(q) == pytest.approx(
                expected, rel=1e-12, abs=1e-9
            )

    @given(st.lists(finite, min_size=1, max_size=4))
    @settings(max_examples=100)
    def test_below_five_samples_even_without_buffer(self, values):
        """n < 5: the raw P² estimator is still in its initialization
        window and reads the sorted intake exactly (nearest rank)."""
        for q in QUANTILES:
            est = P2Quantile(q)
            for value in values:
                est.observe(value)
            ordered = sorted(float(v) for v in values)
            rank = max(0, min(len(ordered) - 1, round(q * (len(ordered) - 1))))
            assert est.value == ordered[rank]

    @given(st.lists(finite, min_size=9, max_size=48))
    @settings(max_examples=100)
    def test_handover_replays_in_arrival_order(self, values):
        """Outgrowing the warm-up buffer hands over to P² markers fed in
        arrival order — bit-identical to never having buffered at all."""
        sketch = QuantileSketch("t", quantiles=QUANTILES, warmup=8)
        for value in values:
            sketch.observe(value)
        assert not sketch.exact
        for q in QUANTILES:
            reference = P2Quantile(q)
            for value in values:
                reference.observe(value)
            assert sketch.estimate(q) == reference.value

    def test_observe_many_is_state_identical_to_observe(self):
        rng = np.random.default_rng(7)
        values = rng.lognormal(1.0, 1.5, size=300).tolist()
        batched = QuantileSketch("b", quantiles=QUANTILES, warmup=64)
        single = QuantileSketch("s", quantiles=QUANTILES, warmup=64)
        for lo in range(0, len(values), 17):
            batched.observe_many(values[lo : lo + 17])
        for value in values:
            single.observe(value)
        assert batched.count == single.count
        assert (batched.min, batched.max) == (single.min, single.max)
        # The running sum groups additions per batch — identical up to
        # floating-point association; the marker state is bit-identical.
        assert batched.sum == pytest.approx(single.sum, rel=1e-12)
        for q in QUANTILES:
            assert batched.estimate(q) == single.estimate(q)


class TestShardMerge:
    """The equivalence the host ledger's mergeable sketches rely on."""

    @given(st.lists(finite, min_size=0, max_size=200), st.integers(1, 5))
    @settings(max_examples=100)
    def test_merge_equals_back_to_back_folding(self, values, k):
        chunks = [list(chunk) for chunk in np.array_split(values, k)]
        shards = []
        for i, chunk in enumerate(chunks):
            shard = QuantileSketch(f"shard{i}", quantiles=QUANTILES)
            shard.observe_many(chunk)
            shards.append(shard)

        merged = QuantileSketch("merged", quantiles=QUANTILES)
        reference = QuantileSketch("reference", quantiles=QUANTILES)
        for shard, chunk in zip(shards, chunks):
            merged.merge(shard)
            reference.observe_many(chunk)

        assert merged.count == len(values)
        assert merged.as_dict() == reference.as_dict()
        if values:
            for q in QUANTILES:
                assert merged.estimate(q) == reference.estimate(q)

    def test_merge_order_independent_while_exact(self):
        rng = np.random.default_rng(11)
        chunks = [rng.exponential(5.0, size=40).tolist() for _ in range(3)]
        forward = QuantileSketch("f", quantiles=QUANTILES)
        backward = QuantileSketch("b", quantiles=QUANTILES)
        for chunk in chunks:
            shard = QuantileSketch("s", quantiles=QUANTILES)
            shard.observe_many(chunk)
            forward.merge(shard)
        for chunk in reversed(chunks):
            shard = QuantileSketch("s", quantiles=QUANTILES)
            shard.observe_many(chunk)
            backward.merge(shard)
        # Both are still exact, so estimates agree regardless of arrival
        # order (the buffers hold identical multisets).
        assert forward.exact and backward.exact
        for q in QUANTILES:
            assert forward.estimate(q) == backward.estimate(q)

    def test_merging_an_empty_sketch_is_a_no_op(self):
        target = QuantileSketch("t", quantiles=QUANTILES)
        target.observe_many([1.0, 2.0, 3.0])
        before = target.as_dict()
        target.merge(QuantileSketch("empty", quantiles=QUANTILES))
        assert target.as_dict() == before

    def test_merge_refuses_an_outgrown_source(self):
        source = QuantileSketch("s", quantiles=QUANTILES, warmup=4)
        source.observe_many([1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
        assert not source.exact
        target = QuantileSketch("t", quantiles=QUANTILES)
        with pytest.raises(ValueError, match="outgrew its\\s+warm-up buffer"):
            target.merge(source)

    def test_merge_refuses_mismatched_quantiles(self):
        source = QuantileSketch("s", quantiles=(0.5,))
        source.observe(1.0)
        target = QuantileSketch("t", quantiles=QUANTILES)
        with pytest.raises(ValueError, match="tracking"):
            target.merge(source)
