"""Tests for the causal span layer: reconstruction, health, post-mortems.

Three acceptance contracts dominate:

* **lossless reconstruction** — every traced workunit yields exactly one
  span tree, span-derived aggregates reconcile with
  :class:`~repro.core.metrics.CampaignMetrics` and the fault error
  budget, and critical-path intervals are contiguous and sum exactly to
  each workunit's makespan;
* **sketch accuracy** — the streaming health percentiles land within 2%
  of the exact offline percentiles computed from the reconstructed spans
  (exact during the warm-up regime, P² beyond);
* **zero perturbation** — a health-monitored campaign is bit-identical
  in outcome and in its ``server``/``agent``/``fault`` event stream to an
  unmonitored one, and two identically-seeded runs ``trace diff`` clean.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest

from repro.boinc import CampaignConfig, scaled_phase1
from repro.faults import FaultPlan
from repro.obs import (
    HealthMonitor,
    P2Quantile,
    QuantileSketch,
    RingSink,
    SLOConfig,
    Tracer,
    read_trace,
    reconstruct,
    reconstruct_file,
)
from repro.obs.health import SLORule
from repro.obs.postmortem import CampaignReport, diff_traces

#: shared faulted-campaign shape (small enough for the tier-1 suite);
#: crash MTBF is in active days, and the bounded reissue budget keeps the
#: degraded campaign terminating
SCALE, PROTEINS, SEED = 500, 8, 7
FAULT_SPEC = "crash=1,corrupt=0.03,loss=0.05,maxreissue=6"

#: span reconstruction needs the lifecycle channels complete — a big ring
#: and no ``des`` firehose keeps the fixture lossless
LIFECYCLE = ("server", "agent", "fault")


def _lifecycle_tracer(channels=LIFECYCLE):
    return Tracer(sink=RingSink(capacity=2_000_000), channels=channels)


def _digest(events):
    """sha256 over (etype, t_sim, sorted fields); health events excluded
    so monitored and unmonitored streams are comparable."""
    h = hashlib.sha256()
    for e in events:
        if e.channel == "health":
            continue
        h.update(repr((e.etype, e.t_sim, tuple(sorted(e.fields.items())))).encode())
    return h.hexdigest()


@pytest.fixture(scope="module")
def faulted():
    """One seeded faulted campaign: tracer, result and its span campaign."""
    tracer = _lifecycle_tracer()
    cfg = CampaignConfig(faults=FaultPlan.from_spec(FAULT_SPEC))
    result = scaled_phase1(
        scale=SCALE, n_proteins=PROTEINS, seed=SEED, config=cfg, tracer=tracer,
    ).run()
    campaign = reconstruct(tracer.sink.events)
    return tracer, result, campaign


@pytest.fixture(scope="module")
def monitored():
    """The same campaign with a health monitor riding the trace stream."""
    tracer = _lifecycle_tracer(channels=LIFECYCLE + ("health",))
    cfg = CampaignConfig(faults=FaultPlan.from_spec(FAULT_SPEC))
    monitor = HealthMonitor()
    result = scaled_phase1(
        scale=SCALE, n_proteins=PROTEINS, seed=SEED, config=cfg,
        tracer=tracer, health=monitor,
    ).run()
    campaign = reconstruct(
        e for e in tracer.sink.events if e.channel != "health"
    )
    return tracer, result, campaign


@pytest.fixture(scope="module")
def trace_files(tmp_path_factory):
    """Two identically-seeded campaigns recorded to JSONL."""
    base = tmp_path_factory.mktemp("traces")
    paths = []
    for name in ("a", "b"):
        path = base / f"{name}.jsonl"
        with Tracer.to_jsonl(path, channels=LIFECYCLE) as tracer:
            scaled_phase1(
                scale=900, n_proteins=5, seed=3, tracer=tracer,
            ).run()
        paths.append(path)
    return paths


# -- lossless reconstruction -------------------------------------------------


class TestReconstructionLossless:
    def test_one_tree_per_traced_workunit(self, faulted):
        _, result, campaign = faulted
        assert len(campaign) == result.server.n_workunits
        assert campaign.orphans == 0
        counts = campaign.counts()
        # the campaign ran to completion: every tree closed one way or the
        # other, none left dangling
        assert counts["open"] == 0
        assert counts["validated"] + counts["failed"] == counts["workunits"]

    def test_counts_reconcile_with_campaign_metrics(self, faulted):
        _, result, campaign = faulted
        m = result.metrics()
        counts = campaign.counts()
        assert counts["results"] == m.results_disclosed
        assert counts["validated"] == m.results_effective

    def test_counts_reconcile_with_fault_report(self, faulted):
        tracer, result, campaign = faulted
        report = result.fault_report()
        counts = campaign.counts()
        assert counts["crashes"] == tracer.counts["fault.crash"]
        assert counts["crashes"] == report.injected["crashes"]
        assert counts["report_retries"] == tracer.counts["fault.report_lost"]
        assert counts["report_retries"] == report.injected["report_lost"]
        assert counts["invalid"] == report.invalid_rejected
        assert counts["failed"] == report.workunits_failed

    def test_every_attempt_has_a_terminal_outcome(self, faulted):
        _, _, campaign = faulted
        terminal = {"valid", "invalid", "late", "timed-out", "abandoned"}
        for tree in campaign:
            for attempt in tree.attempts:
                assert attempt.outcome in terminal
                assert attempt.t_end is not None

    def test_critical_path_is_contiguous_and_sums_to_makespan(self, faulted):
        _, _, campaign = faulted
        checked = 0
        for tree in campaign:
            if tree.makespan_s is None:
                continue
            path = tree.critical_path()
            assert path, f"wu {tree.wu} closed without a critical path"
            assert path[0][1] == tree.t_release
            assert path[-1][2] == tree.t_close
            for (_, _, end, _), (_, start, _, _) in zip(path, path[1:]):
                assert start == end  # contiguous, no gaps or overlaps
            total = sum(t1 - t0 for _, t0, t1, _ in path)
            assert total == pytest.approx(tree.makespan_s, abs=1e-6)
            checked += 1
        assert checked > 0

    def test_time_by_category_partitions_the_makespan(self, faulted):
        _, _, campaign = faulted
        tree = campaign.stragglers(1)[0]
        totals = tree.time_by_category()
        assert sum(totals.values()) == pytest.approx(tree.makespan_s, abs=1e-6)
        assert all(v >= 0 for v in totals.values())

    def test_latency_samples_count_the_reported_attempts(self, faulted):
        _, result, campaign = faulted
        samples = campaign.latency_samples()
        counts = campaign.counts()
        assert len(samples["makespan_s"]) == counts["validated"]
        assert len(samples["result_latency_s"]) == counts["results"]
        assert len(samples["active_hours"]) > 0

    def test_stragglers_and_critical_couples(self, faulted):
        _, _, campaign = faulted
        stragglers = campaign.stragglers(5)
        spans = [t.makespan_s for t in stragglers]
        assert spans == sorted(spans, reverse=True)
        couples = campaign.critical_couples(5)
        assert couples
        worst = couples[0]
        assert worst["worst_makespan_s"] == stragglers[0].makespan_s
        assert worst["dominant_s"] > 0

    def test_tail_summary_shape(self, faulted):
        _, _, campaign = faulted
        tail = campaign.tail_summary()
        assert tail["p50_s"] <= tail["p90_s"] <= tail["p99_s"] <= tail["max_s"]
        assert tail["tail_ratio_p99_p50"] >= 1.0

    def test_file_reconstruction_matches_in_memory(self, trace_files):
        path = trace_files[0]
        streamed = reconstruct_file(path)
        buffered = reconstruct(read_trace(path))
        assert streamed.counts() == buffered.counts()
        assert diff_traces(streamed, buffered).identical


# -- quantile sketches --------------------------------------------------------


class TestQuantileSketch:
    def test_exact_during_warmup(self):
        rng = np.random.default_rng(11)
        samples = rng.lognormal(mean=1.0, sigma=1.2, size=200)
        sketch = QuantileSketch("t", quantiles=(0.5, 0.9, 0.99))
        for v in samples:
            sketch.observe(v)
        assert sketch.exact
        for q in (0.5, 0.9, 0.99):
            assert sketch.estimate(q) == pytest.approx(
                float(np.quantile(samples, q)), rel=1e-12
            )

    def test_p2_within_two_percent_post_warmup(self):
        """The streaming estimate after the exact buffer hands over."""
        rng = np.random.default_rng(13)
        samples = rng.lognormal(mean=1.0, sigma=1.0, size=50_000)
        sketch = QuantileSketch("t", quantiles=(0.5, 0.9, 0.99), warmup=0)
        assert not sketch.exact  # pure P² from the first sample
        for v in samples:
            sketch.observe(v)
        for q in (0.5, 0.9, 0.99):
            exact = float(np.quantile(samples, q))
            assert sketch.estimate(q) == pytest.approx(exact, rel=0.02)

    def test_handover_drops_the_buffer(self):
        sketch = QuantileSketch("t", quantiles=(0.5,), warmup=10)
        for v in range(1, 12):
            sketch.observe(float(v))
        assert not sketch.exact
        assert sketch.min <= sketch.estimate(0.5) <= sketch.max
        doc = sketch.as_dict()
        assert doc["exact"] is False
        assert doc["count"] == 11

    def test_untracked_quantile_rejected(self):
        sketch = QuantileSketch("t", quantiles=(0.5,))
        sketch.observe(1.0)
        with pytest.raises(KeyError):
            sketch.estimate(0.75)

    def test_p2_guards(self):
        with pytest.raises(ValueError):
            P2Quantile(1.0)
        with pytest.raises(ValueError):
            P2Quantile(0.5).value

    def test_health_sketches_match_offline_spans(self, monitored):
        """The live percentile within 2% of the exact offline one."""
        _, result, campaign = monitored
        offline = campaign.latency_samples()
        live = result.health.latencies
        pairs = [
            ("health.makespan_s", "makespan_s"),
            ("health.result_latency_s", "result_latency_s"),
            ("health.report_delay_s", "report_delay_s"),
            ("health.active_hours", "active_hours"),
        ]
        for sketch_name, sample_name in pairs:
            samples = offline[sample_name]
            doc = live[sketch_name]
            assert doc["count"] == len(samples)
            for key, q in (("p50", 0.5), ("p90", 0.9), ("p99", 0.99)):
                exact = float(np.quantile(np.asarray(samples), q))
                assert doc["estimates"][key] == pytest.approx(exact, rel=0.02)


# -- health monitor -----------------------------------------------------------


class TestHealthBitIdentity:
    def test_outcome_identical_with_monitor_attached(self, faulted, monitored):
        _, plain, _ = faulted
        _, with_health, _ = monitored
        assert with_health.completion_time == plain.completion_time
        assert (
            with_health.server.stats.disclosed == plain.server.stats.disclosed
        )
        assert (
            with_health.server.stats.effective == plain.server.stats.effective
        )
        np.testing.assert_array_equal(
            with_health.telemetry.daily_results, plain.telemetry.daily_results
        )

    def test_event_stream_identical_with_monitor_attached(
        self, faulted, monitored
    ):
        """Golden-digest contract: the lifecycle event stream is
        byte-identical; the monitor only adds ``health.*`` events."""
        tracer_plain, _, _ = faulted
        tracer_health, _, _ = monitored
        assert _digest(tracer_health.sink.events) == _digest(
            tracer_plain.sink.events
        )

    def test_slo_report_attached_to_result(self, faulted, monitored):
        _, plain, _ = faulted
        _, with_health, _ = monitored
        assert plain.health is None
        report = with_health.health
        assert report is not None
        assert report.n_observed > 0
        assert report.counters["health.validated"] == float(
            with_health.metrics().results_effective
        )
        rendered = report.render()
        assert "SLO report" in rendered
        for rule in ("queue-starvation", "deadline-storm", "reissue-burn",
                     "validation-backlog"):
            assert rule in rendered
        doc = report.as_dict()
        assert doc["healthy"] == report.healthy
        assert set(doc["rules"]) == set(report.rules)


class TestSLOHysteresis:
    def test_breach_then_clear_with_hysteresis(self):
        monitor = HealthMonitor()  # no tracer bound: transitions are silent
        rule = SLORule("test", threshold=10.0, clear_fraction=0.5)
        rule.update(0.0, 5.0, monitor)
        assert not rule.breached
        rule.update(1.0, 10.0, monitor)
        assert rule.breached and rule.n_breaches == 1
        # hysteresis: dropping below the threshold but above the clear
        # level keeps the breach open (no flapping)
        rule.update(2.0, 7.0, monitor)
        assert rule.breached and rule.n_breaches == 1
        rule.update(3.0, 5.0, monitor)
        assert not rule.breached
        assert rule.breached_s == pytest.approx(2.0)
        rule.update(4.0, 12.0, monitor)
        assert rule.breached and rule.n_breaches == 2
        rule.close(10.0)
        assert rule.breached_s == pytest.approx(2.0 + 6.0)
        assert rule.peak_level == 12.0

    def test_transitions_emit_health_events(self):
        config = SLOConfig(starvation_idle_polls=3)
        monitor = HealthMonitor(config=config)
        out = Tracer(channels=["health"])
        monitor.bind(out)
        feed = Tracer(channels=["agent"])
        for t in (0.0, 1.0, 2.0):
            feed.emit("agent.idle", t_sim=t, host=1)
        # one more poll far outside the sliding day evicts the others and
        # clears the breach
        feed.emit("agent.idle", t_sim=200_000.0, host=1)
        for event in feed.sink.events:
            monitor.observe(event)
        assert out.counts["health.slo_breach"] == 1
        assert out.counts["health.slo_clear"] == 1
        breach = out.sink.events[0]
        assert breach.fields["rule"] == "queue-starvation"
        assert breach.fields["level"] >= 3

    def test_reissue_burn_needs_campaign_shape(self):
        monitor = HealthMonitor()
        feed = Tracer(channels=["server"])
        feed.emit("server.reissue", t_sim=0.0, wu=1, reason="deadline")
        monitor.observe(feed.sink.events[0])
        # without configure_campaign the burn rule has no budget: silent
        assert monitor.rules["reissue-burn"].peak_level == 0.0
        monitor.configure_campaign(n_workunits=2, max_reissues=1)
        feed.emit("server.reissue", t_sim=1.0, wu=1, reason="deadline")
        monitor.observe(feed.sink.events[1])
        assert monitor.rules["reissue-burn"].peak_level == pytest.approx(1.0)


# -- post-mortems -------------------------------------------------------------


class TestTraceDiff:
    def test_identically_seeded_runs_diff_clean(self, trace_files):
        diff = diff_traces(*trace_files)
        assert diff.identical
        assert diff.n_workunits > 0
        assert "agree" in diff.render()
        assert "0 divergences" in diff.render()

    def test_divergence_is_localized(self, trace_files):
        a = reconstruct_file(trace_files[0])
        b = reconstruct_file(trace_files[1])
        dropped = max(b.trees)
        del b.trees[dropped]
        victim = min(b.trees)
        b.trees[victim].attempts[0].host += 1
        diff = diff_traces(a, b)
        assert not diff.identical
        assert diff.only_in_a == [dropped]
        assert any(
            wu == victim and fieldname == "hosts"
            for wu, fieldname, _, _ in diff.divergences
        )
        rendered = diff.render()
        assert "diverge" in rendered
        assert str(victim) in rendered


class TestCampaignReport:
    def test_terminal_render_sections(self, faulted):
        tracer, result, _ = faulted
        report = CampaignReport.from_events(
            tracer.sink.events, fault_rows=result.fault_report().rows(),
        )
        text = report.render()
        assert "CAMPAIGN POST-MORTEM" in text
        assert "Summary" in text
        assert "Throughput by paper phase" in text
        assert "control period" in text
        assert "Span latencies" in text
        assert "Fault error budget" in text
        assert "fault plan" in text  # the live FaultReport rows were used
        assert "Top critical-path couples" in text

    def test_markdown_render(self, faulted):
        tracer, _, _ = faulted
        report = CampaignReport.from_events(tracer.sink.events)
        text = report.render(markdown=True)
        assert text.startswith("# Campaign post-mortem")
        assert "## Summary" in text
        assert "| --" in text  # markdown table separators

    def test_summary_reconciles_with_counts(self, faulted):
        tracer, _, campaign = faulted
        report = CampaignReport.from_events(tracer.sink.events)
        rows = dict(
            (row[0], row[1]) for row in report.summary_rows()
        )
        assert rows["workunits traced"] == campaign.counts()["workunits"]
        assert rows["results reported"] == campaign.counts()["results"]

    def test_from_trace_matches_from_events(self, trace_files):
        path = trace_files[0]
        from_file = CampaignReport.from_trace(path)
        from_events = CampaignReport.from_events(read_trace(path))
        assert from_file.summary_rows() == from_events.summary_rows()
        assert from_file.straggler_rows() == from_events.straggler_rows()

    def test_health_section_rendered_when_present(self, monitored):
        tracer, result, _ = monitored
        report = CampaignReport.from_events(
            (e for e in tracer.sink.events if e.channel != "health"),
            health=result.health,
        )
        text = report.render()
        assert "Live SLO report" in text
        assert "queue-starvation" in text
