"""Internal-consistency checks of the paper constants."""

from __future__ import annotations

from repro import constants as C
from repro.units import SECONDS_PER_WEEK


class TestApplicationShape:
    def test_orientations(self):
        # 21 couples x 10 gamma = 210 starting orientations (footnote 1).
        assert C.N_ORIENTATIONS == 210

    def test_sum_nsep_consistent_with_max_workunits(self):
        assert C.SUM_NSEP * C.N_PROTEINS == C.TOTAL_MAX_WORKUNITS

    def test_total_reference_cpu_parses(self):
        # 1,488 years and change, in seconds.
        assert 46.9e9 < C.TOTAL_REFERENCE_CPU_S < 47.0e9


class TestSpeedDownArithmetic:
    def test_raw_speed_down_matches_totals(self):
        # Section 6: consumed / estimated = 5.43.
        ratio = C.TOTAL_WCG_CPU_S / C.TOTAL_REFERENCE_CPU_S
        assert abs(ratio - C.SPEED_DOWN_RAW) < 0.01

    def test_net_speed_down_matches_redundancy(self):
        assert abs(C.SPEED_DOWN_RAW / C.REDUNDANCY_FACTOR - C.SPEED_DOWN_NET) < 0.01

    def test_redundancy_matches_result_counts(self):
        ratio = C.RESULTS_DISCLOSED / C.RESULTS_EFFECTIVE
        assert abs(ratio - C.REDUNDANCY_FACTOR) < 0.01

    def test_useful_fraction(self):
        assert abs(C.RESULTS_EFFECTIVE / C.RESULTS_DISCLOSED - C.USEFUL_RESULT_FRACTION) < 0.01

    def test_effective_results_match_workunit_arithmetic(self):
        # ~3.94M results x mean 3h18m47s reference cost ~ the total estimate:
        # the paper's numbers are mutually consistent.
        implied_total = C.RESULTS_EFFECTIVE * C.DEPLOYED_WU_MEAN_S
        assert abs(implied_total / C.TOTAL_REFERENCE_CPU_S - 1.0) < 0.01

    def test_mean_device_time_consistent(self):
        # 13 h / 3.96 ~ 3h17m, "this confirms the speed down value".
        assert abs(C.WCG_RESULT_MEAN_S / C.SPEED_DOWN_NET - C.DEPLOYED_WU_MEAN_S) < 600


class TestPhaseStructure:
    def test_phases_sum_to_project(self):
        total = C.CONTROL_PERIOD_WEEKS + C.PRIORITIZATION_WEEKS + C.FULL_POWER_WEEKS
        assert total == C.PROJECT_DURATION_WEEKS

    def test_phase1_vftp_matches_cpu(self):
        vftp = C.PHASE1_CPU_S / (C.PHASE1_WEEKS * SECONDS_PER_WEEK)
        assert round(vftp) == C.PHASE1_VFTP

    def test_phase2_vftp_matches_cpu(self):
        vftp = C.PHASE2_CPU_S / (C.PHASE2_WEEKS * SECONDS_PER_WEEK)
        assert round(vftp) == C.PHASE2_VFTP

    def test_phase2_work_ratio(self):
        assert abs(C.PHASE2_WORK_RATIO - 5.668) < 0.01
        assert abs(C.PHASE2_CPU_S / C.PHASE1_CPU_S - C.PHASE2_WORK_RATIO) < 0.01

    def test_member_vftp_yield_consistent(self):
        # Phase-I yield applied to phase-II demand gives the Table 3 members.
        yield_ = C.PHASE1_VFTP / C.PHASE1_MEMBERS
        assert abs(C.PHASE2_VFTP / yield_ - C.PHASE2_MEMBERS) < 5

    def test_table2_speed_down(self):
        assert abs(
            C.HCMD_VFTP_WHOLE_PERIOD / C.DEDICATED_EQUIV_WHOLE_PERIOD
            - C.SPEED_DOWN_RAW
        ) < 0.01
        assert abs(
            C.HCMD_VFTP_FULL_POWER / C.DEDICATED_EQUIV_FULL_POWER - C.SPEED_DOWN_RAW
        ) < 0.01

    def test_week_equivalence(self):
        # 74,825 VFTP / 3.96 ~ 18,895 dedicated processors (Section 6).
        assert abs(C.WCG_WEEK_VFTP / C.SPEED_DOWN_NET - C.WCG_WEEK_DEDICATED_EQUIV) < 10
