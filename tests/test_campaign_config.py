"""CampaignConfig: the consolidated campaign-configuration value object.

Covers the frozen dataclass itself (defaults, validation, ``with_``,
legacy-alias translation) and the two construction paths into
:class:`VolunteerGridSimulation` — the preferred config object and the
deprecated keyword shim — including the contract that both resolve to
the same simulation.
"""

from __future__ import annotations

import dataclasses
import warnings

import pytest

from repro import constants
from repro.boinc import CampaignConfig, scaled_phase1
from repro.boinc.credit import AccountingMode
from repro.boinc.server import ServerConfig
from repro.boinc.simulator import VolunteerGridSimulation
from repro.boinc.validator import ValidationPolicy
from repro.faults import FaultPlan
from repro.maxdo.cost_model import CostModel
from repro.proteins.library import ProteinLibrary
from repro.units import weeks


def _library_and_costs(seed: int = 1):
    library = ProteinLibrary.synthetic(n_proteins=4, sum_nsep=8, seed=seed)
    return library, CostModel.calibrated(library, seed=seed)


class TestConfigValue:
    def test_defaults_are_phase1(self):
        cfg = CampaignConfig()
        assert cfg.packaging is None
        assert cfg.server is None
        assert cfg.faults == FaultPlan.none()
        assert not cfg.faults.enabled
        assert cfg.horizon_weeks == 40.0
        assert cfg.scale == 1.0
        assert cfg.seed == constants.DEFAULT_SEED
        assert cfg.release_policy == "least-cost"

    def test_validation(self):
        with pytest.raises(ValueError):
            CampaignConfig(horizon_weeks=0.0)
        with pytest.raises(ValueError):
            CampaignConfig(scale=-1.0)

    def test_frozen(self):
        cfg = CampaignConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.seed = 3

    def test_with_returns_new_instance(self):
        cfg = CampaignConfig()
        derived = cfg.with_(seed=9, horizon_weeks=20.0)
        assert derived.seed == 9
        assert derived.horizon_weeks == 20.0
        assert cfg.seed == constants.DEFAULT_SEED  # original untouched

    def test_with_validates(self):
        with pytest.raises(ValueError):
            CampaignConfig().with_(scale=0.0)

    def test_with_rejects_unknown_field(self):
        with pytest.raises(TypeError):
            CampaignConfig().with_(quorum=3)

    def test_legacy_alias_server_config(self):
        sc = ServerConfig(deadline_s=123456.0)
        with pytest.warns(DeprecationWarning, match="docs/usage.md"):
            assert CampaignConfig.from_kwargs(server_config=sc).server is sc
        assert CampaignConfig().with_(server_config=sc).server is sc


class TestConstructionPaths:
    def test_legacy_kwargs_warn_and_match_config(self):
        library, costs = _library_and_costs()
        sc = ServerConfig(validation=ValidationPolicy(switch_time=weeks(4.0)))
        with pytest.warns(DeprecationWarning, match="CampaignConfig"):
            legacy = VolunteerGridSimulation(
                library, costs,
                server_config=sc, seed=5, horizon_weeks=30.0,
                accounting=AccountingMode.BOINC_CPU_TIME, n_hosts_peak=7,
            )
        cfg = CampaignConfig(
            server=sc, seed=5, horizon_weeks=30.0,
            accounting=AccountingMode.BOINC_CPU_TIME, n_hosts_peak=7,
        )
        modern = VolunteerGridSimulation.from_config(library, costs, cfg)
        assert legacy.config == modern.config
        assert legacy.seed == modern.seed == 5
        assert legacy.server_config == modern.server_config == sc
        assert legacy.accounting is AccountingMode.BOINC_CPU_TIME
        assert legacy.n_hosts_peak == modern.n_hosts_peak == 7

    def test_config_plus_legacy_kwargs_is_an_error(self):
        library, costs = _library_and_costs()
        with pytest.raises(TypeError, match="not both"):
            VolunteerGridSimulation(
                library, costs, CampaignConfig(), seed=5
            )

    def test_from_config_does_not_warn(self):
        library, costs = _library_and_costs()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            sim = VolunteerGridSimulation.from_config(
                library, costs, CampaignConfig(seed=3)
            )
        assert sim.seed == 3

    def test_bare_construction_uses_defaults(self):
        library, costs = _library_and_costs()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            sim = VolunteerGridSimulation(library, costs)
        assert sim.config == CampaignConfig()
        assert sim.seed == constants.DEFAULT_SEED


class TestScaledPhase1:
    def test_kwargs_fold_into_config_without_warning(self):
        sc = ServerConfig(deadline_s=123456.0)
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            sim = scaled_phase1(
                scale=900, n_proteins=5, server_config=sc, n_hosts_peak=9
            )
        assert sim.server_config is sc
        assert sim.n_hosts_peak == 9
        assert sim.config.server is sc

    def test_explicit_args_override_config(self):
        cfg = CampaignConfig(seed=1, scale=2.0, horizon_weeks=10.0)
        sim = scaled_phase1(
            scale=900, n_proteins=5, seed=4, horizon_weeks=30.0, config=cfg
        )
        assert sim.seed == 4
        assert sim.scale == 900
        assert sim.horizon_s == weeks(30.0)

    def test_config_packaging_wins_when_set(self):
        from repro.core.packaging import PackagingPolicy

        custom = PackagingPolicy(target_hours=8.0)
        sim = scaled_phase1(
            scale=900, n_proteins=5, config=CampaignConfig(packaging=custom)
        )
        assert sim.packaging is custom
        default = scaled_phase1(scale=900, n_proteins=5)
        assert default.packaging.target_hours == pytest.approx(3.65)

    def test_fault_plan_threads_through(self):
        cfg = CampaignConfig(faults=FaultPlan.from_spec("outage=2x6,maxreissue=4"))
        sim = scaled_phase1(scale=900, n_proteins=5, config=cfg)
        assert sim.faults.enabled
        assert sim.server_config.max_reissues == 4
        assert len(sim.server_config.outages) == 2
