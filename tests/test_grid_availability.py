"""Tests for repro.grid.availability: volunteer on/off traces."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid.availability import AvailabilityTrace, generate_trace
from repro.units import SECONDS_PER_DAY

HORIZON = 60 * SECONDS_PER_DAY


def _trace(seed=0, **kw):
    return generate_trace(np.random.default_rng(seed), horizon=HORIZON, **kw)


class TestTraceAlgebra:
    def test_intervals_sorted_disjoint(self):
        t = _trace()
        assert (t.ends > t.starts).all()
        assert (t.starts[1:] >= t.ends[:-1]).all()

    def test_is_available_inside_interval(self):
        t = _trace()
        mid = (t.starts[0] + t.ends[0]) / 2
        assert t.is_available(mid)

    def test_not_available_before_first(self):
        t = _trace()
        assert not t.is_available(t.starts[0] - 1.0)

    def test_boundaries_half_open(self):
        t = _trace()
        assert t.is_available(t.starts[0])
        assert not t.is_available(t.ends[0])

    def test_next_transition_from_on(self):
        t = _trace()
        mid = (t.starts[0] + t.ends[0]) / 2
        assert t.next_transition(mid) == t.ends[0]

    def test_next_transition_from_off(self):
        t = _trace()
        assert t.next_transition(t.starts[0] - 1.0) == t.starts[0]

    def test_next_transition_none_at_end(self):
        t = _trace()
        assert t.next_transition(t.ends[-1] + 1.0) is None

    def test_available_seconds_full_window(self):
        t = _trace()
        assert t.available_seconds(0, HORIZON) == pytest.approx(t.total_available)

    def test_available_seconds_partial(self):
        t = _trace()
        s0, e0 = t.starts[0], t.ends[0]
        assert t.available_seconds(s0, (s0 + e0) / 2) == pytest.approx((e0 - s0) / 2)

    def test_available_seconds_rejects_reversed(self):
        t = _trace()
        with pytest.raises(ValueError):
            t.available_seconds(10.0, 5.0)

    def test_validation_rejects_overlap(self):
        with pytest.raises(ValueError):
            AvailabilityTrace(
                starts=np.array([0.0, 5.0]), ends=np.array([6.0, 10.0]), horizon=20.0
            )

    def test_validation_rejects_empty_interval(self):
        with pytest.raises(ValueError):
            AvailabilityTrace(
                starts=np.array([5.0]), ends=np.array([5.0]), horizon=20.0
            )

    def test_validation_rejects_past_horizon(self):
        with pytest.raises(ValueError):
            AvailabilityTrace(
                starts=np.array([5.0]), ends=np.array([25.0]), horizon=20.0
            )


class TestGeneration:
    def test_deterministic(self):
        a = _trace(seed=3)
        b = _trace(seed=3)
        np.testing.assert_array_equal(a.starts, b.starts)

    def test_join_time_respected(self):
        t = _trace(join_time=10 * SECONDS_PER_DAY)
        assert t.starts[0] >= 10 * SECONDS_PER_DAY

    def test_leave_time_respected(self):
        t = _trace(leave_time=20 * SECONDS_PER_DAY)
        assert t.ends[-1] <= 20 * SECONDS_PER_DAY

    def test_empty_when_leave_before_join(self):
        t = _trace(join_time=30 * SECONDS_PER_DAY, leave_time=10 * SECONDS_PER_DAY)
        assert t.n_intervals() == 0
        assert not t.is_available(15 * SECONDS_PER_DAY)

    def test_duty_fraction_near_half(self):
        # 6h on / 6h off -> ~50% availability over a long horizon.
        fractions = [
            _trace(seed=s).total_available / HORIZON for s in range(8)
        ]
        assert 0.35 < float(np.mean(fractions)) < 0.65

    def test_asymmetric_parameters_shift_duty(self):
        mostly_on = _trace(mean_on_hours=12, mean_off_hours=2)
        mostly_off = _trace(mean_on_hours=2, mean_off_hours=12)
        assert mostly_on.total_available > mostly_off.total_available

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_interval_invariants_property(self, seed):
        t = _trace(seed=seed)
        if t.n_intervals():
            assert (t.ends > t.starts).all()
            assert (t.starts[1:] >= t.ends[:-1]).all()
            assert t.ends[-1] <= t.horizon


def _scalar_reference_trace(
    rng, horizon, join_time=0.0, leave_time=None,
    mean_on_hours=6.0, mean_off_hours=6.0, diurnal=True,
):
    """The original one-draw-per-session generate_trace, kept verbatim as
    the bit-exactness oracle for the block-sampling rewrite."""
    from repro.units import SECONDS_PER_HOUR

    end = min(horizon, leave_time if leave_time is not None else horizon)
    if end <= join_time:
        return AvailabilityTrace(np.empty(0), np.empty(0), horizon)
    phase = float(rng.random())
    starts, ends = [], []
    t = join_time + float(rng.exponential(mean_off_hours * SECONDS_PER_HOUR / 2))
    while t < end:
        on = float(rng.exponential(mean_on_hours * SECONDS_PER_HOUR))
        session_end = min(t + max(on, 60.0), end)
        starts.append(t)
        ends.append(session_end)
        gap = float(rng.exponential(mean_off_hours * SECONDS_PER_HOUR))
        if diurnal:
            day_fraction = ((session_end / SECONDS_PER_DAY) + phase) % 1.0
            gap /= 1.0 + 0.5 * np.sin(2.0 * np.pi * (day_fraction - 0.25))
        t = session_end + max(gap, 60.0)
    return AvailabilityTrace(np.asarray(starts), np.asarray(ends), horizon)


class TestBlockSamplingBitExact:
    """The vectorized generate_trace consumes the same RNG bit stream and
    produces bit-identical traces to the scalar reference loop."""

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_default_parameters(self, seed):
        got = _trace(seed=seed)
        ref = _scalar_reference_trace(np.random.default_rng(seed), HORIZON)
        np.testing.assert_array_equal(got.starts, ref.starts)
        np.testing.assert_array_equal(got.ends, ref.ends)

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=0, max_value=1000),
        st.floats(min_value=0.01, max_value=48.0),
        st.floats(min_value=0.01, max_value=48.0),
        st.booleans(),
    )
    def test_parameter_sweep(self, seed, on_h, off_h, diurnal):
        kw = dict(mean_on_hours=on_h, mean_off_hours=off_h, diurnal=diurnal)
        got = _trace(seed=seed, **kw)
        ref = _scalar_reference_trace(np.random.default_rng(seed), HORIZON, **kw)
        np.testing.assert_array_equal(got.starts, ref.starts)
        np.testing.assert_array_equal(got.ends, ref.ends)

    def test_join_and_leave_windows(self):
        for seed in range(5):
            kw = dict(
                join_time=7 * SECONDS_PER_DAY, leave_time=33 * SECONDS_PER_DAY
            )
            got = _trace(seed=seed, **kw)
            ref = _scalar_reference_trace(
                np.random.default_rng(seed), HORIZON, **kw
            )
            np.testing.assert_array_equal(got.starts, ref.starts)
            np.testing.assert_array_equal(got.ends, ref.ends)
