"""Tests for repro.proteins.io: the reduced-protein file format."""

from __future__ import annotations

import numpy as np
import pytest

from repro.proteins.io import (
    protein_file_bytes,
    read_protein,
    write_protein,
)


class TestRoundtrip:
    def test_exact_roundtrip_structure(self, tmp_path, tiny_receptor):
        path = tmp_path / "p.rpm"
        write_protein(path, tiny_receptor)
        back = read_protein(path)
        assert back.name == tiny_receptor.name
        assert back.n_beads == tiny_receptor.n_beads
        np.testing.assert_allclose(back.coords, tiny_receptor.coords, atol=6e-6)
        np.testing.assert_allclose(back.radii, tiny_receptor.radii, atol=6e-5)
        np.testing.assert_allclose(back.charges, tiny_receptor.charges, atol=6e-6)

    def test_roundtrip_preserves_energy(self, tmp_path, tiny_receptor, tiny_ligand):
        # The fixed-width format must carry enough precision that docking
        # energies computed from a round-tripped protein match closely.
        from repro.maxdo.energy import interaction_energy

        for p in (tiny_receptor, tiny_ligand):
            write_protein(tmp_path / f"{p.name}.rpm", p)
        rec = read_protein(tmp_path / f"{tiny_receptor.name}.rpm")
        lig = read_protein(tmp_path / f"{tiny_ligand.name}.rpm")
        t = np.array(
            [tiny_receptor.bounding_radius + tiny_ligand.bounding_radius + 4, 0, 0]
        )
        orig = interaction_energy(tiny_receptor, tiny_ligand, np.eye(3), t)
        reread = interaction_energy(rec, lig, np.eye(3), t)
        assert reread[0] == pytest.approx(orig[0], rel=1e-3, abs=1e-5)
        assert reread[1] == pytest.approx(orig[1], rel=1e-3, abs=1e-5)

    def test_reported_size_matches_disk(self, tmp_path, tiny_receptor):
        path = tmp_path / "p.rpm"
        size = write_protein(path, tiny_receptor)
        assert path.stat().st_size == size

    def test_size_projection_close(self, tmp_path, tiny_receptor):
        path = tmp_path / "p.rpm"
        actual = write_protein(path, tiny_receptor)
        projected = protein_file_bytes(tiny_receptor.n_beads)
        assert actual == pytest.approx(projected, rel=0.02)


class TestMalformed:
    def _write_and_mangle(self, tmp_path, protein, mangle):
        path = tmp_path / "p.rpm"
        write_protein(path, protein)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(mangle(lines)) + "\n")
        return path

    def test_wrong_magic(self, tmp_path, tiny_receptor):
        path = self._write_and_mangle(
            tmp_path, tiny_receptor, lambda ls: ["garbage"] + ls[1:]
        )
        with pytest.raises(ValueError, match="not a reduced-protein"):
            read_protein(path)

    def test_wrong_version(self, tmp_path, tiny_receptor):
        path = self._write_and_mangle(
            tmp_path, tiny_receptor,
            lambda ls: ["# repro reduced protein v99"] + ls[1:],
        )
        with pytest.raises(ValueError, match="version"):
            read_protein(path)

    def test_bead_count_mismatch(self, tmp_path, tiny_receptor):
        path = self._write_and_mangle(
            tmp_path, tiny_receptor,
            lambda ls: ls[:-2] + ls[-1:],  # drop one BEAD record
        )
        with pytest.raises(ValueError, match="NBEAD"):
            read_protein(path)

    def test_truncated_file(self, tmp_path, tiny_receptor):
        path = self._write_and_mangle(
            tmp_path, tiny_receptor, lambda ls: ls[:-1]  # drop END
        )
        with pytest.raises(ValueError, match="truncated"):
            read_protein(path)

    def test_malformed_bead(self, tmp_path, tiny_receptor):
        def mangle(ls):
            ls[4] = "BEAD 2 not numbers"
            return ls

        path = self._write_and_mangle(tmp_path, tiny_receptor, mangle)
        with pytest.raises(ValueError, match="BEAD"):
            read_protein(path)

    def test_unexpected_line(self, tmp_path, tiny_receptor):
        path = self._write_and_mangle(
            tmp_path, tiny_receptor, lambda ls: ls[:3] + ["WAT 1"] + ls[3:]
        )
        with pytest.raises(ValueError, match="unexpected"):
            read_protein(path)
