"""Tests for repro.science.sitemaps: binding sites and focused docking."""

from __future__ import annotations

import numpy as np
import pytest

from repro.science.partners import predict_partners, recovery_rate
from repro.science.sitemaps import SiteMaps


@pytest.fixture(scope="module")
def maps() -> SiteMaps:
    return SiteMaps.synthetic(n_proteins=30, seed=11, n_positions=120)


class TestSynthesis:
    def test_shapes(self, maps):
        assert maps.energies.shape == (30, 30, 120)
        assert maps.planted_sites.shape == (30, 120)
        assert maps.directions.shape == (120, 3)

    def test_every_protein_has_a_site(self, maps):
        assert (maps.planted_sites.sum(axis=1) >= 1).all()

    def test_sites_are_angular_caps(self, maps):
        # A planted site's directions cluster: their mean vector is long.
        for i in range(5):
            dirs = maps.directions[maps.planted_sites[i]]
            assert np.linalg.norm(dirs.mean(axis=0)) > 0.5

    def test_site_positions_bind_stronger(self, maps):
        for i in range(5):
            site = maps.planted_sites[i]
            e = maps.energies[i]
            assert e[:, site].mean() < e[:, ~site].mean() - 1.0

    def test_deterministic(self):
        a = SiteMaps.synthetic(n_proteins=8, seed=3, n_positions=40)
        b = SiteMaps.synthetic(n_proteins=8, seed=3, n_positions=40)
        np.testing.assert_array_equal(a.energies, b.energies)

    def test_validation(self):
        with pytest.raises(ValueError):
            SiteMaps.synthetic(n_proteins=1, seed=0)
        with pytest.raises(ValueError):
            SiteMaps.synthetic(n_proteins=4, seed=0, n_positions=4)


class TestConsensusSites:
    def test_recovery_high(self, maps):
        # Consensus across ligands localizes the planted interfaces.
        assert maps.site_recovery() > 0.85

    def test_predicted_site_size_defaults_to_truth(self, maps):
        predicted = maps.predicted_site(0)
        assert len(predicted) == maps.planted_sites[0].sum()

    def test_consensus_excludes_self(self, maps):
        # Shifting protein 0's self-docking energies must not change its
        # own consensus scores.
        shifted = SiteMaps(
            energies=maps.energies.copy(),
            directions=maps.directions,
            planted_sites=maps.planted_sites,
            complexes=maps.complexes,
        )
        shifted.energies[0, 0, :] -= 100.0
        np.testing.assert_allclose(
            shifted.consensus_scores(0), maps.consensus_scores(0)
        )

    def test_predicted_site_validation(self, maps):
        with pytest.raises(ValueError):
            maps.predicted_site(0, n_site=0)
        with pytest.raises(ValueError):
            maps.predicted_site(0, n_site=10_000)


class TestFocusedDocking:
    def test_to_matrix_is_position_minimum(self, maps):
        matrix = maps.to_matrix()
        np.testing.assert_allclose(matrix.energies, maps.energies.min(axis=2))
        assert matrix.complexes == maps.complexes

    def test_partner_recovery_from_full_maps(self, maps):
        pred = predict_partners(maps.to_matrix())
        assert recovery_rate(pred, maps.complexes, k=1) > 0.8

    def test_pruning_keeps_partner_signal(self, maps):
        # The phase-II claim: cut the docking points ~10x, keep the signal.
        pruned = maps.pruned(keep_fraction=0.1)
        pred = predict_partners(pruned.to_matrix())
        assert recovery_rate(pred, maps.complexes, k=1) > 0.7

    def test_pruning_shrinks_cost_linearly(self, maps):
        assert maps.docking_cost_fraction(0.1) == pytest.approx(0.1, abs=0.01)
        assert maps.pruned(0.1).n_positions == round(0.1 * maps.n_positions)

    def test_pruned_positions_are_mostly_site(self, maps):
        pruned = maps.pruned(keep_fraction=0.2)
        # The surviving positions concentrate on the planted interfaces.
        assert pruned.planted_sites.mean() > 2 * maps.planted_sites.mean()

    def test_pruned_has_no_shared_grid(self, maps):
        assert maps.pruned(0.5).directions is None

    def test_keep_everything_is_identity_up_to_order(self, maps):
        pruned = maps.pruned(1.0)
        np.testing.assert_allclose(
            np.sort(pruned.energies, axis=2), np.sort(maps.energies, axis=2)
        )

    def test_validation(self, maps):
        with pytest.raises(ValueError):
            maps.pruned(0.0)
        with pytest.raises(ValueError):
            maps.docking_cost_fraction(1.5)
