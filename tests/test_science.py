"""Tests for repro.science: cross-docking analysis and partner prediction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.proteins.library import ProteinLibrary
from repro.science.energymatrix import CrossDockingMatrix, plant_complexes
from repro.science.partners import (
    double_centered,
    predict_partners,
    ranking_auc,
    recovery_rate,
)


@pytest.fixture(scope="module")
def matrix(phase1_library):
    return CrossDockingMatrix.synthetic(phase1_library)


class TestPlantComplexes:
    def test_every_protein_at_most_once(self):
        pairs = plant_complexes(20, seed=1)
        members = [p for pair in pairs for p in pair]
        assert len(members) == len(set(members)) == 20

    def test_odd_count_leaves_one_out(self):
        pairs = plant_complexes(21, seed=1)
        assert len(pairs) == 10

    def test_deterministic(self):
        assert plant_complexes(20, seed=3) == plant_complexes(20, seed=3)

    def test_different_seeds_differ(self):
        assert plant_complexes(20, seed=3) != plant_complexes(20, seed=4)

    def test_too_few_rejected(self):
        with pytest.raises(ValueError):
            plant_complexes(1, seed=1)


class TestSyntheticMatrix:
    def test_shape_and_complexes(self, matrix, phase1_library):
        assert matrix.energies.shape == (168, 168)
        assert len(matrix.complexes) == 84

    def test_all_binding(self, matrix):
        # Everything binds somewhat (energies negative), complexes more so.
        assert (matrix.energies < 0).all()

    def test_complex_couples_stronger_on_average(self, matrix):
        sym = matrix.symmetrized()
        mask = np.zeros_like(sym, dtype=bool)
        for a, b in matrix.complexes:
            mask[a, b] = mask[b, a] = True
        off = ~np.eye(len(sym), dtype=bool)
        assert sym[mask].mean() < sym[~mask & off].mean() - 5.0

    def test_asymmetric(self, matrix):
        assert not np.allclose(matrix.energies, matrix.energies.T)

    def test_deterministic(self, phase1_library):
        a = CrossDockingMatrix.synthetic(phase1_library)
        b = CrossDockingMatrix.synthetic(phase1_library)
        np.testing.assert_array_equal(a.energies, b.energies)

    def test_validation(self):
        with pytest.raises(ValueError):
            CrossDockingMatrix(np.zeros((3, 4)))


class TestDoubleCentering:
    def test_removes_row_and_column_means(self, matrix):
        centered = double_centered(matrix.energies)
        np.testing.assert_allclose(centered.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(centered.mean(axis=1), 0.0, atol=1e-9)

    def test_idempotent(self, matrix):
        once = double_centered(matrix.energies)
        np.testing.assert_allclose(double_centered(once), once, atol=1e-9)

    def test_removes_additive_stickiness_exactly(self):
        rng = np.random.default_rng(0)
        sticky = rng.normal(size=12)
        signal = rng.normal(size=(12, 12))
        contaminated = signal + sticky[:, None] + sticky[None, :]
        np.testing.assert_allclose(
            double_centered(contaminated), double_centered(signal), atol=1e-9
        )

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            double_centered(np.zeros((3, 4)))


class TestPartnerPrediction:
    def test_rankings_exclude_self(self, matrix):
        pred = predict_partners(matrix)
        for i in (0, 41, 167):
            assert i not in pred.ranking[i]
            assert len(pred.ranking[i]) == 167

    def test_normalized_recovers_planted_partners(self, matrix):
        pred = predict_partners(matrix, normalize=True)
        assert recovery_rate(pred, matrix.complexes, k=1) > 0.7
        assert recovery_rate(pred, matrix.complexes, k=5) > 0.9

    def test_normalization_beats_raw_energies(self, matrix):
        raw = predict_partners(matrix, normalize=False)
        norm = predict_partners(matrix, normalize=True)
        assert recovery_rate(norm, matrix.complexes, k=1) > recovery_rate(
            raw, matrix.complexes, k=1
        )

    def test_auc_ordering(self, matrix):
        raw = predict_partners(matrix, normalize=False)
        norm = predict_partners(matrix, normalize=True)
        assert ranking_auc(norm, matrix.complexes) > ranking_auc(
            raw, matrix.complexes
        )
        assert ranking_auc(norm, matrix.complexes) > 0.9

    def test_rank_of(self, matrix):
        pred = predict_partners(matrix)
        a, b = matrix.complexes[0]
        assert 1 <= pred.rank_of(a, b) <= 167
        assert pred.rank_of(a, pred.top_partners(a, 1)[0]) == 1

    def test_rank_of_self_rejected(self, matrix):
        pred = predict_partners(matrix)
        with pytest.raises(ValueError):
            pred.rank_of(0, 0)

    def test_metric_validation(self, matrix):
        pred = predict_partners(matrix)
        with pytest.raises(ValueError):
            recovery_rate(pred, [], k=1)
        with pytest.raises(ValueError):
            recovery_rate(pred, matrix.complexes, k=0)


class TestRealEngineMatrix:
    @staticmethod
    def _tiny_library():
        # Hand-sized proteins (tens of beads) keep real docking fast;
        # ProteinLibrary.synthetic targets realistic ~250-residue medians.
        import numpy as np

        return ProteinLibrary(
            names=["A", "B", "C"],
            nsep=np.array([6, 6, 6]),
            residue_counts=np.array([25, 32, 40]),
            spacing=4.0,
            seed=9,
        )

    def test_from_docking_small_library(self):
        library = self._tiny_library()
        matrix = CrossDockingMatrix.from_docking(
            library, nsep_per_couple=2, n_couples=3, n_gamma=2,
            minimize=True, max_iterations=10,
        )
        assert matrix.energies.shape == (3, 3)
        assert np.isfinite(matrix.energies).all()
        # Minimized energies from a coarse grid are attractive or mildly
        # repulsive, never absurd.
        assert (matrix.energies < 50).all()

    def test_prediction_runs_on_real_matrix(self):
        library = self._tiny_library()
        matrix = CrossDockingMatrix.from_docking(
            library, nsep_per_couple=1, n_couples=2, n_gamma=1,
            minimize=False,
        )
        pred = predict_partners(matrix)
        assert pred.ranking.shape == (3, 2)
