"""Tests for the CampaignPlan release-order policies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.campaign import CampaignPlan


@pytest.fixture(scope="module", params=CampaignPlan.POLICIES)
def plan(request, small_library, small_cost_model):
    return CampaignPlan(small_library, small_cost_model, policy=request.param)


class TestAllPolicies:
    def test_order_is_permutation(self, plan):
        n = len(plan.library)
        assert sorted(plan.release_order.tolist()) == list(range(n))

    def test_total_work_policy_invariant(self, plan, small_cost_model):
        assert plan.total_work == pytest.approx(
            small_cost_model.total_reference_cpu()
        )

    def test_snapshot_full_work_completes_everything(self, plan):
        snap = plan.snapshot(plan.total_work)
        assert snap.proteins_complete == len(plan.library)

    def test_ordered_couples_consistent(self, plan):
        couples = plan.ordered_couples()
        n = len(plan.library)
        receptors = [couples[b * n][0] for b in range(n)]
        assert receptors == plan.release_order.tolist()


class TestPolicyShapes:
    def test_least_cost_ascending(self, small_library, small_cost_model):
        plan = CampaignPlan(small_library, small_cost_model, "least-cost")
        works = plan.batch_work[plan.release_order]
        assert (np.diff(works) >= 0).all()

    def test_largest_first_descending(self, small_library, small_cost_model):
        plan = CampaignPlan(small_library, small_cost_model, "largest-first")
        works = plan.batch_work[plan.release_order]
        assert (np.diff(works) <= 0).all()

    def test_index_is_identity(self, small_library, small_cost_model):
        plan = CampaignPlan(small_library, small_cost_model, "index")
        assert plan.release_order.tolist() == list(range(len(small_library)))

    def test_random_deterministic(self, small_library, small_cost_model):
        a = CampaignPlan(small_library, small_cost_model, "random")
        b = CampaignPlan(small_library, small_cost_model, "random")
        np.testing.assert_array_equal(a.release_order, b.release_order)

    def test_unknown_policy_rejected(self, small_library, small_cost_model):
        with pytest.raises(ValueError):
            CampaignPlan(small_library, small_cost_model, "magic")


class TestFigure7DependsOnPolicy:
    def test_early_feedback_is_least_cost_property(
        self, phase1_library, phase1_cost_model
    ):
        """At equal work done, least-cost-first has completed many more
        proteins than largest-first — the deployment rationale of
        Section 5.1, and the reason Figure 7 looks the way it does."""
        least = CampaignPlan(phase1_library, phase1_cost_model, "least-cost")
        largest = CampaignPlan(phase1_library, phase1_cost_model, "largest-first")
        w = 0.3 * least.total_work
        assert (
            least.snapshot(w).proteins_complete
            > 3 * max(largest.snapshot(w).proteins_complete, 1)
        )

    def test_least_cost_anchor_inverts_under_largest_first(
        self, phase1_library, phase1_cost_model
    ):
        largest = CampaignPlan(phase1_library, phase1_cost_model, "largest-first")
        # 85% of proteins complete requires nearly all of the work.
        assert largest.work_at_protein_fraction(0.85) > 0.9
