"""Execute every fenced Python example in docs/*.md.

The usage guide and the service protocol reference are contracts: if an
example on those pages stops running, the page is lying.  Each markdown
file's ```python blocks execute in order in one shared namespace (so a
later block may build on an earlier one, e.g. reading the trace file an
earlier block wrote) with the working directory pointed at a temp dir
(examples may create files; the repo stays clean).

Escape hatch: a block whose first line is ``# doc-check: skip`` is
compiled but not executed.  The reference pages (docs/usage.md,
docs/service.md) are forbidden from using it — every example there must
actually run.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
DOCS = REPO / "docs"
DOC_FILES = sorted(DOCS.glob("*.md"))

SKIP_MARK = "# doc-check: skip"

#: pages where every Python example MUST execute (no skip marker allowed)
FULLY_EXECUTABLE = ("usage.md", "service.md")

_FENCE_OPEN = re.compile(r"^```python\s*$")
_FENCE_CLOSE = re.compile(r"^```\s*$")


def python_blocks(path: Path) -> list[tuple[int, str]]:
    """(starting line number, source) of each ```python fence in *path*."""
    blocks: list[tuple[int, str]] = []
    lines = path.read_text(encoding="utf-8").splitlines()
    inside = False
    start = 0
    buf: list[str] = []
    for i, line in enumerate(lines, start=1):
        if not inside and _FENCE_OPEN.match(line):
            inside, start, buf = True, i + 1, []
        elif inside and _FENCE_CLOSE.match(line):
            inside = False
            blocks.append((start, "\n".join(buf) + "\n"))
        elif inside:
            buf.append(line)
    assert not inside, f"{path.name}: unterminated ```python fence at line {start}"
    return blocks


def _docs_with_python() -> list[Path]:
    return [p for p in DOC_FILES if python_blocks(p)]


@pytest.mark.parametrize("doc", _docs_with_python(), ids=lambda p: p.name)
def test_doc_examples_execute(doc: Path, tmp_path, monkeypatch, capsys):
    """Every ```python block in *doc* compiles; non-skipped ones run."""
    monkeypatch.chdir(tmp_path)  # examples may write files (traces, workdirs)
    namespace: dict = {"__name__": f"docscheck_{doc.stem}"}
    for lineno, source in python_blocks(doc):
        # pad so tracebacks and SyntaxErrors point at the real doc line
        padded = "\n" * (lineno - 1) + source
        code = compile(padded, str(doc.relative_to(REPO)), "exec")
        if source.lstrip().startswith(SKIP_MARK):
            continue
        exec(code, namespace)  # noqa: S102 - executing our own documentation
    capsys.readouterr()  # examples print; keep test output clean


def test_reference_pages_never_skip_examples():
    for name in FULLY_EXECUTABLE:
        text = (DOCS / name).read_text(encoding="utf-8")
        assert SKIP_MARK not in text, (
            f"docs/{name} is a reference page: every Python example on it "
            f"must execute (found a '{SKIP_MARK}' marker)"
        )


def test_known_pages_are_covered():
    """The pages this PR documents actually carry executable examples."""
    names = {p.name for p in _docs_with_python()}
    assert {"usage.md", "service.md", "observability.md"} <= names
