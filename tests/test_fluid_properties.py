"""Property-based tests of the fluid campaign model.

Hypothesis generates arbitrary share schedules, efficiency constants and
workloads; the invariants must hold for all of them:

* work conservation — integrated useful work never exceeds the total and
  equals it exactly on completion;
* accounting algebra — consumed = useful x speed-down x redundancy,
  week by week;
* monotonicity — more supply never completes later.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.campaign import CampaignPlan
from repro.fluid import FluidCampaign
from repro.grid.population import ShareSchedule
from repro.maxdo.cost_model import CostModel
from repro.proteins.library import ProteinLibrary

schedules = st.builds(
    ShareSchedule,
    control_weeks=st.floats(min_value=0.0, max_value=12.0),
    ramp_weeks=st.floats(min_value=0.5, max_value=8.0),
    control_share=st.floats(min_value=0.01, max_value=0.2),
    full_share=st.floats(min_value=0.25, max_value=0.9),
)

efficiencies = st.fixed_dictionaries({
    "speed_down_net": st.floats(min_value=1.0, max_value=8.0),
    "redundancy_quorum": st.floats(min_value=1.5, max_value=2.5),
    "redundancy_bounds": st.floats(min_value=1.0, max_value=1.5),
    "validation_switch_week": st.floats(min_value=0.0, max_value=30.0),
})


@pytest.fixture(scope="module")
def small_campaign(small_library, small_cost_model):
    return CampaignPlan(small_library, small_cost_model)


@pytest.fixture(scope="module")
def phase1_scale_factor(small_campaign):
    from repro import constants as C

    return small_campaign.total_work / C.TOTAL_REFERENCE_CPU_S


class TestFluidInvariants:
    @settings(max_examples=25, deadline=None)
    @given(schedule=schedules, eff=efficiencies)
    def test_conservation_and_algebra(
        self, small_campaign, phase1_scale_factor, schedule, eff
    ):
        fluid = FluidCampaign(
            small_campaign,
            mean_workunit_reference_s=12_000.0,
            share_schedule=schedule,
            supply_scale=phase1_scale_factor,
            **eff,
        )
        result = fluid.run(max_weeks=400)

        useful_total = result.useful_reference_s.sum()
        assert useful_total <= small_campaign.total_work * (1 + 1e-9)
        if result.completion_week is not None:
            assert useful_total == pytest.approx(
                small_campaign.total_work, rel=1e-9
            )

        # Weekly algebra: consumed = useful x net speed-down x redundancy.
        for w in range(len(result.weeks)):
            if result.useful_reference_s[w] == 0:
                continue
            ratio = result.consumed_cpu_s[w] / result.useful_reference_s[w]
            lo = eff["speed_down_net"] * min(
                eff["redundancy_quorum"], eff["redundancy_bounds"]
            )
            hi = eff["speed_down_net"] * max(
                eff["redundancy_quorum"], eff["redundancy_bounds"]
            )
            assert lo - 1e-9 <= ratio <= hi + 1e-9

        # Series sanity.
        assert (result.useful_reference_s >= 0).all()
        assert (result.consumed_cpu_s >= 0).all()
        cum = result.cumulative_work_fraction
        assert (np.diff(cum) >= -1e-12).all()

    @settings(max_examples=10, deadline=None)
    @given(
        scale_a=st.floats(min_value=0.5, max_value=2.0),
        boost=st.floats(min_value=1.1, max_value=4.0),
    )
    def test_more_supply_never_slower(
        self, small_campaign, phase1_scale_factor, scale_a, boost
    ):
        def completion(multiplier: float) -> float:
            fluid = FluidCampaign(
                small_campaign,
                mean_workunit_reference_s=12_000.0,
                supply_scale=phase1_scale_factor * multiplier,
            )
            res = fluid.run(max_weeks=400)
            assert res.completion_week is not None
            return res.completion_week

        slow = completion(scale_a)
        fast = completion(scale_a * boost)
        assert fast <= slow + 1e-9

    @settings(max_examples=10, deadline=None)
    @given(week=st.floats(min_value=0.0, max_value=60.0))
    def test_snapshot_bounds(self, small_campaign, phase1_scale_factor, week):
        fluid = FluidCampaign(
            small_campaign,
            mean_workunit_reference_s=12_000.0,
            supply_scale=phase1_scale_factor,
        )
        result = fluid.run(max_weeks=60)
        clipped = min(week, float(len(result.useful_reference_s)))
        snap = fluid.snapshot_at_week(result, clipped)
        assert 0.0 <= snap.work_fraction <= 1.0
        assert 0.0 <= snap.protein_fraction_complete <= 1.0
