"""Integration tests: the full pipeline wired end to end.

Calibration -> estimation -> packaging -> (volunteer | dedicated | fluid)
execution -> analysis, on reduced-size inputs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.comparison import EquivalenceTable
from repro.analysis.progression import progression_anchor
from repro.boinc.simulator import scaled_phase1
from repro.core.campaign import CampaignPlan
from repro.core.estimation import calibration_experiment, estimate_total_work
from repro.core.packaging import PackagingPolicy, WorkUnitPlan
from repro.dedicated import DedicatedGridSimulation
from repro.fluid import FluidCampaign
from repro.maxdo.cost_model import CostModel
from repro.proteins.library import ProteinLibrary


class TestCalibrationToPackaging:
    """Section 4's pipeline: measure, estimate, slice."""

    def test_recovered_matrix_packages_like_truth(self, small_library):
        truth = CostModel.calibrated(small_library)
        _, recovered = calibration_experiment(truth, samples_per_couple=21)
        approx = CostModel(
            recovered, small_library.nsep.copy(), seed=small_library.seed
        )
        plan_true = WorkUnitPlan(truth, PackagingPolicy(5))
        plan_meas = WorkUnitPlan(approx, PackagingPolicy(5))
        # Measurement noise changes only a tiny fraction of the slicing.
        assert plan_meas.total_workunits() == pytest.approx(
            plan_true.total_workunits(), rel=0.05
        )

    def test_estimation_consistent_with_plan(self, small_library, small_cost_model):
        report = estimate_total_work(small_library, small_cost_model)
        plan = WorkUnitPlan(small_cost_model, PackagingPolicy(5))
        assert plan.total_reference_cpu() == pytest.approx(
            report.total_reference_cpu_s, rel=1e-9
        )


class TestVolunteerVsDedicated:
    """Table 2's content, generated from the two simulators."""

    def test_equivalence_table_from_simulations(self):
        sim = scaled_phase1(scale=250, n_proteins=12)
        volunteer = sim.run()
        metrics = volunteer.metrics()
        # A dedicated cluster sized by the equivalence finishes the same
        # useful work in roughly the same wall-clock.  Scaled campaigns have
        # a fractional equivalent, expressed as 4 slower processors.
        dedicated = DedicatedGridSimulation(
            n_processors=4, speed=metrics.dedicated_equivalent / 4
        ).run_workunits(sim.plan, lpt=True)
        # cpu_seconds are billed at the cluster's own (slower) speed.
        assert dedicated.cpu_seconds == pytest.approx(
            metrics.useful_reference_cpu_s * 4 / metrics.dedicated_equivalent,
            rel=1e-6,
        )
        assert dedicated.makespan_s == pytest.approx(metrics.span_seconds, rel=0.35)
        table = EquivalenceTable.from_metrics(metrics, metrics)
        # The equivalence ratio IS the raw speed-down (unrounded row).
        assert table.whole_period.speed_down == pytest.approx(
            metrics.speed_down_raw, rel=1e-9
        )


class TestFluidVsDES:
    """The fluid model and the DES must agree on scale-free outcomes."""

    def test_completion_and_redundancy_agree(self):
        sim = scaled_phase1(scale=150, n_proteins=16)
        des = sim.run()
        from repro import constants as C

        fluid = FluidCampaign(
            sim.campaign,
            sim.plan.duration_stats()["mean"],
            share_schedule=sim.share_schedule,
            population=sim.population,
            # Match the fluid supply to the reduced workload so both models
            # integrate the same campaign shape.
            supply_scale=sim.campaign.total_work / C.TOTAL_REFERENCE_CPU_S,
        )
        fres = fluid.run()
        assert des.completion_weeks == pytest.approx(
            26.0, abs=7.0
        )  # both land in the right regime
        assert fres.completion_week == pytest.approx(26.0, abs=3.0)
        assert des.metrics().redundancy == pytest.approx(
            fres.overall_redundancy, abs=0.25
        )

    def test_progression_shape_agrees(self):
        sim = scaled_phase1(scale=150, n_proteins=16)
        des = sim.run()
        # DES: at the moment 50% of useful work is done, how many batches
        # are complete?  Compare against the campaign-plan snapshot.
        stats = des.server.stats
        half_work = 0.5 * stats.useful_reference_s
        anchor_protein, _ = progression_anchor(
            CampaignPlan(sim.library, sim.cost_model), 0.5
        )
        order = des.batch_completion_s[np.argsort(des.batch_completion_s)]
        # Batch completions are increasing in release order on average: the
        # fluid prediction of "more proteins than work" holds.
        assert anchor_protein > 0.5


class TestRealDockingThroughPackaging:
    """A real (tiny) workunit computed by the MAXDo engine."""

    def test_workunit_executes_and_validates(self, tmp_path):
        from repro.maxdo.docking import MaxDoRun
        from repro.validation.checks import check_result_file

        library = ProteinLibrary.synthetic(n_proteins=2, sum_nsep=24, seed=3)
        cost_model = CostModel.calibrated(library)
        plan = WorkUnitPlan(cost_model, PackagingPolicy(target_hours=10))
        wu = next(plan.iter_workunits([(0, 1)]))
        receptor = library.protein(0)
        ligand = library.protein(1)
        nsep_slice = min(wu.nsep, 2)  # keep the real compute tiny
        run = MaxDoRun(
            receptor, ligand,
            isep_start=wu.isep_start, nsep=nsep_slice,
            total_nsep=int(library.nsep[0]),
            workdir=tmp_path, n_couples=4, n_gamma=2,
            minimize=True, max_iterations=10,
        )
        ck = run.run()
        assert ck.complete
        final = run.finalize()
        assert check_result_file(final).ok
