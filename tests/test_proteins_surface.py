"""Tests for repro.proteins.surface: starting-position geometry."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.proteins.surface import (
    CLEARANCE_A,
    fibonacci_sphere,
    geometric_nsep,
    shell_radii,
    starting_positions,
)


class TestFibonacciSphere:
    def test_unit_vectors(self):
        pts = fibonacci_sphere(100)
        np.testing.assert_allclose(np.linalg.norm(pts, axis=1), 1.0, atol=1e-12)

    def test_exact_count(self):
        assert fibonacci_sphere(37).shape == (37, 3)

    def test_single_point(self):
        assert fibonacci_sphere(1).shape == (1, 3)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            fibonacci_sphere(0)

    def test_quasi_uniform_coverage(self):
        # Every octant gets within 2x of its fair share for large n.
        pts = fibonacci_sphere(800)
        octants = (pts > 0).astype(int) @ np.array([1, 2, 4])
        counts = np.bincount(octants, minlength=8)
        assert counts.min() > 50
        assert counts.max() < 200

    @given(st.integers(min_value=2, max_value=500))
    @settings(max_examples=20, deadline=None)
    def test_centroid_near_origin(self, n):
        pts = fibonacci_sphere(n)
        assert np.linalg.norm(pts.mean(axis=0)) < 0.5


class TestShellRadii:
    def test_innermost_outside_envelope(self, tiny_receptor):
        radii = shell_radii(tiny_receptor)
        assert radii[0] == pytest.approx(tiny_receptor.bounding_radius + CLEARANCE_A)

    def test_monotone_increasing(self, tiny_receptor):
        radii = shell_radii(tiny_receptor)
        assert (np.diff(radii) > 0).all()


class TestGeometricNsep:
    def test_monotone_in_spacing(self, tiny_receptor):
        values = [geometric_nsep(tiny_receptor, s) for s in (1.0, 2.0, 4.0, 8.0)]
        assert values == sorted(values, reverse=True)

    def test_positive(self, tiny_receptor):
        assert geometric_nsep(tiny_receptor, 100.0) >= 1

    def test_rejects_bad_spacing(self, tiny_receptor):
        with pytest.raises(ValueError):
            geometric_nsep(tiny_receptor, 0.0)


class TestStartingPositions:
    def test_exact_count(self, tiny_receptor):
        for n in (1, 7, 100, 523):
            assert starting_positions(tiny_receptor, n).shape == (n, 3)

    def test_outside_envelope(self, tiny_receptor):
        pos = starting_positions(tiny_receptor, 200)
        dist = np.linalg.norm(pos, axis=1)
        assert dist.min() >= tiny_receptor.bounding_radius + CLEARANCE_A - 1e-9

    def test_deterministic_prefix_stability(self, tiny_receptor):
        # Two calls with the same count give identical enumerations: workunit
        # isep ranges must always denote the same physical positions.
        a = starting_positions(tiny_receptor, 150)
        b = starting_positions(tiny_receptor, 150)
        np.testing.assert_array_equal(a, b)

    def test_rejects_zero(self, tiny_receptor):
        with pytest.raises(ValueError):
            starting_positions(tiny_receptor, 0)

    @given(st.integers(min_value=1, max_value=400))
    @settings(max_examples=15, deadline=None)
    def test_count_property(self, tiny_receptor, n):
        assert len(starting_positions(tiny_receptor, n)) == n
