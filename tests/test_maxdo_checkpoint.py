"""Tests for repro.maxdo.checkpoint: restart-between-positions semantics."""

from __future__ import annotations

import pytest

from repro.maxdo.checkpoint import Checkpoint, rollback_partial_results
from repro.maxdo.resultfile import ResultHeader, format_record, write_results
import numpy as np


def _ckpt(positions_done=0, nsep=5, n_couples=3):
    return Checkpoint(
        receptor="A", ligand="B", isep_start=1, nsep=nsep,
        n_couples=n_couples, n_gamma=10, positions_done=positions_done,
    )


def _partial(tmp_path, n_lines, n_couples=3):
    header = ResultHeader("A", "B", 1, 5, n_couples, 10)
    lines = [
        format_record(
            i // n_couples + 1, i % n_couples + 1, 1,
            np.zeros(3), np.zeros(3), -1.0, 0.5,
        )
        for i in range(n_lines)
    ]
    path = tmp_path / "x.partial"
    write_results(path, header, lines)
    return path


class TestCheckpoint:
    def test_lines_committed(self):
        assert _ckpt(positions_done=2, n_couples=3).lines_committed == 6

    def test_complete(self):
        assert not _ckpt(positions_done=4, nsep=5).complete
        assert _ckpt(positions_done=5, nsep=5).complete

    def test_save_load_roundtrip(self, tmp_path):
        ck = _ckpt(positions_done=3)
        path = tmp_path / "c.ckpt"
        ck.save(path)
        assert Checkpoint.load(path) == ck

    def test_load_rejects_corrupt(self, tmp_path):
        path = tmp_path / "c.ckpt"
        _ckpt(positions_done=3).save(path)
        text = path.read_text().replace('"positions_done": 3', '"positions_done": 99')
        path.write_text(text)
        with pytest.raises(ValueError):
            Checkpoint.load(path)

    def test_advanced(self):
        ck = _ckpt(positions_done=1).advanced()
        assert ck.positions_done == 2

    def test_advanced_cannot_exceed_nsep(self):
        with pytest.raises(ValueError):
            _ckpt(positions_done=5, nsep=5).advanced()

    def test_save_is_atomic_replace(self, tmp_path):
        path = tmp_path / "c.ckpt"
        _ckpt(positions_done=1).save(path)
        _ckpt(positions_done=2).save(path)
        assert Checkpoint.load(path).positions_done == 2
        assert not path.with_suffix(".ckpt.tmp").exists()


class TestRollback:
    def test_rollback_drops_uncommitted_tail(self, tmp_path):
        # 2 positions committed (6 lines), 2 extra lines from a mid-position
        # kill: the paper says those must be recomputed.
        path = _partial(tmp_path, n_lines=8)
        dropped = rollback_partial_results(path, _ckpt(positions_done=2))
        assert dropped == 2
        data_lines = [
            ln for ln in path.read_text().splitlines() if not ln.startswith("#")
        ]
        assert len(data_lines) == 6

    def test_rollback_noop_when_consistent(self, tmp_path):
        path = _partial(tmp_path, n_lines=6)
        assert rollback_partial_results(path, _ckpt(positions_done=2)) == 0

    def test_rollback_preserves_header(self, tmp_path):
        path = _partial(tmp_path, n_lines=8)
        rollback_partial_results(path, _ckpt(positions_done=2))
        assert any(ln.startswith("# receptor A") for ln in path.read_text().splitlines())

    def test_rollback_rejects_missing_lines(self, tmp_path):
        path = _partial(tmp_path, n_lines=3)
        with pytest.raises(ValueError):
            rollback_partial_results(path, _ckpt(positions_done=2))
