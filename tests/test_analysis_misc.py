"""Tests for repro.analysis: distributions, progression, comparison, report."""

from __future__ import annotations

import numpy as np
import pytest

from repro import constants as C
from repro.analysis.comparison import EquivalenceTable
from repro.analysis.distributions import (
    distribution_summary,
    histogram,
    hour_bins,
    nsep_bins,
)
from repro.analysis.progression import progression_anchor, progression_curve
from repro.analysis.report import (
    format_number,
    paper_vs_measured,
    render_histogram,
    render_table,
)
from repro.core.campaign import CampaignPlan
from repro.core.metrics import CampaignMetrics
from repro.units import SECONDS_PER_WEEK


class TestBins:
    def test_hour_bins(self):
        edges = hour_bins(4, 1)
        assert edges.tolist() == [0.0, 3600.0, 7200.0, 10800.0, 14400.0]

    def test_hour_bins_validation(self):
        with pytest.raises(ValueError):
            hour_bins(0)

    def test_nsep_bins_cover_figure2(self):
        edges = nsep_bins()
        assert edges[0] == 0 and edges[-1] >= 8500


class TestHistogram:
    def test_counts_sum_preserved_with_clipping(self):
        values = np.array([-5.0, 0.5, 1.5, 99.0])
        _, counts = histogram(values, np.array([0.0, 1.0, 2.0]))
        assert counts.sum() == 4  # nothing dropped

    def test_no_clip_drops_out_of_range(self):
        values = np.array([-5.0, 0.5, 99.0])
        _, counts = histogram(values, np.array([0.0, 1.0]), clip=False)
        assert counts.sum() == 1

    def test_weights(self):
        values = np.array([0.5, 0.5])
        _, counts = histogram(
            values, np.array([0.0, 1.0]), weights=np.array([2.0, 3.0])
        )
        assert counts[0] == 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            histogram(np.array([1.0]), np.array([0.0]))


class TestDistributionSummary:
    def test_unweighted(self):
        s = distribution_summary(np.array([1.0, 2.0, 3.0]))
        assert s["mean"] == 2.0 and s["median"] == 2.0

    def test_weighted_matches_expansion(self):
        values = np.array([1.0, 10.0])
        weights = np.array([9.0, 1.0])
        s = distribution_summary(values, weights)
        expanded = np.array([1.0] * 9 + [10.0])
        assert s["mean"] == pytest.approx(expanded.mean())
        assert s["median"] == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            distribution_summary(np.array([]))


class TestProgression:
    def test_anchor_on_phase1(self, phase1_library, phase1_cost_model):
        campaign = CampaignPlan(phase1_library, phase1_cost_model)
        protein_frac, work_frac = progression_anchor(campaign, 0.47)
        assert work_frac == pytest.approx(0.47)
        assert protein_frac == pytest.approx(0.85, abs=0.06)

    def test_curve_shapes(self, small_library, small_cost_model):
        campaign = CampaignPlan(small_library, small_cost_model)
        snap = campaign.snapshot(0.4 * campaign.total_work)
        x, done, total = progression_curve(campaign, snap)
        assert len(x) == len(small_library)
        assert (done <= total + 1e-9).all()
        assert total[-1] == pytest.approx(100.0)

    def test_anchor_validation(self, small_library, small_cost_model):
        campaign = CampaignPlan(small_library, small_cost_model)
        with pytest.raises(ValueError):
            progression_anchor(campaign, 1.5)


class TestEquivalence:
    def _metrics(self, weeks, vftp_scale):
        consumed = vftp_scale * weeks * SECONDS_PER_WEEK
        return CampaignMetrics(
            span_seconds=weeks * SECONDS_PER_WEEK,
            consumed_cpu_s=consumed,
            useful_reference_cpu_s=consumed / 5.43,
            results_disclosed=137,
            results_effective=100,
        )

    def test_table2_shape(self):
        table = EquivalenceTable.from_metrics(
            self._metrics(26, 16_450), self._metrics(13, 26_248)
        )
        rows = table.rows()
        assert rows[0][1] == 16_450
        assert rows[1][1] == 26_248
        assert rows[0][2] == pytest.approx(C.DEDICATED_EQUIV_WHOLE_PERIOD, abs=5)
        assert rows[1][2] == pytest.approx(C.DEDICATED_EQUIV_FULL_POWER, abs=5)

    def test_week_equivalent(self):
        # 74,825 VFTP week -> ~18,895 dedicated processors.
        assert EquivalenceTable.current_week_equivalent(
            C.WCG_WEEK_VFTP, C.SPEED_DOWN_NET
        ) == pytest.approx(C.WCG_WEEK_DEDICATED_EQUIV, abs=10)

    def test_week_equivalent_validation(self):
        with pytest.raises(ValueError):
            EquivalenceTable.current_week_equivalent(100.0, 0.0)


class TestReport:
    def test_render_table(self):
        text = render_table(["name", "value"], [["x", 1], ["y", 2.5]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert len(lines) == 4

    def test_render_table_rejects_ragged(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_render_histogram(self):
        text = render_histogram(np.array([0.0, 1.0, 2.0]), np.array([10, 5]))
        lines = text.splitlines()
        assert len(lines) == 2
        assert "#" in lines[0]

    def test_render_histogram_validation(self):
        with pytest.raises(ValueError):
            render_histogram(np.array([0.0, 1.0]), np.array([1, 2]))

    def test_paper_vs_measured_delta(self):
        text = paper_vs_measured([("workunits", 100, 105)])
        assert "+5.0%" in text

    def test_paper_vs_measured_strings_ok(self):
        text = paper_vs_measured([("total", "1,488y", "1,488y")])
        assert "1,488y" in text

    @pytest.mark.parametrize(
        "value,expected",
        [(1_364_476, "1,364,476"), (2.5, "2.5"), ("x", "x"), (float("nan"), "-")],
    )
    def test_format_number(self, value, expected):
        assert format_number(value) == expected
