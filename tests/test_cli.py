"""Tests for the repro-hcmd command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["estimate"])
        assert args.proteins == 168
        assert args.seed == 2007

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_strategy_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["package", "--strategy", "magic"])


class TestCommands:
    def test_estimate(self, capsys):
        assert main(["estimate"]) == 0
        out = capsys.readouterr().out
        assert "1,488:237:19:45:54" in out
        assert "49,481,544" in out

    def test_estimate_small_library(self, capsys):
        assert main(["estimate", "--proteins", "12"]) == 0
        assert "12" in capsys.readouterr().out

    def test_package(self, capsys):
        assert main(["package", "--hours", "10"]) == 0
        out = capsys.readouterr().out
        assert "workunits" in out
        assert "1,3" in out  # ~1.38M formatted with separators

    def test_package_strategy(self, capsys):
        assert main(["package", "--hours", "10", "--strategy", "merge-tail"]) == 0

    def test_simulate(self, capsys):
        assert main(["simulate", "--scale", "500", "--proteins", "8"]) == 0
        out = capsys.readouterr().out
        assert "redundancy factor" in out
        assert "net speed-down" in out

    def test_simulate_boinc_accounting(self, capsys):
        assert main([
            "simulate", "--scale", "500", "--proteins", "8",
            "--accounting", "boinc",
        ]) == 0

    def test_simulate_faults(self, capsys):
        assert main([
            "simulate", "--scale", "900", "--proteins", "5",
            "--faults", "corrupt=0.1,loss=0.1,maxreissue=10",
        ]) == 0
        out = capsys.readouterr().out
        assert "error budget (fault injection)" in out
        assert "fault plan" in out
        assert "invalid results rejected" in out
        assert "workunits failed (reissue budget)" in out

    def test_simulate_without_faults_prints_no_budget(self, capsys):
        assert main(["simulate", "--scale", "900", "--proteins", "5"]) == 0
        assert "error budget" not in capsys.readouterr().out

    def test_simulate_health_prints_slo_report(self, capsys):
        assert main([
            "simulate", "--scale", "900", "--proteins", "5", "--health",
        ]) == 0
        out = capsys.readouterr().out
        assert "SLO report" in out
        assert "queue-starvation" in out
        assert "latency percentiles" in out

    def test_simulate_report_prints_post_mortem(self, capsys):
        assert main([
            "simulate", "--scale", "900", "--proteins", "5",
            "--faults", "corrupt=0.1,loss=0.1,maxreissue=10",
            "--health", "--report",
        ]) == 0
        out = capsys.readouterr().out
        # the fault error budget reaches the post-mortem via
        # CampaignResult.fault_report()
        assert "error budget (fault injection)" in out
        assert "CAMPAIGN POST-MORTEM" in out
        assert "fault plan" in out
        assert "Top critical-path couples" in out
        assert "Live SLO report" in out

    def test_simulate_multi_campaign(self, capsys):
        assert main([
            "simulate",
            "--campaign", "name=hcmd,scale=900,proteins=5",
            "--campaign", "kind=screening,ligands=60,mean-hours=1,batch=20",
            "--hosts-peak", "10", "--horizon-weeks", "30",
        ]) == 0
        out = capsys.readouterr().out
        assert "hcmd" in out and "screening" in out
        assert "policy: fair-share" in out

    def test_simulate_campaign_spec_error_is_friendly(self, capsys):
        assert main(["simulate", "--campaign", "bogus=1"]) == 2
        err = capsys.readouterr().err
        assert "'bogus'" in err and "valid keys" in err

    def test_simulate_campaign_rejects_shards(self, capsys):
        assert main([
            "simulate", "--campaign", "scale=900,proteins=5", "--shards", "2",
        ]) == 2
        assert "--shards" in capsys.readouterr().err

    def test_serve_loadgen_reject_multiple_campaigns(self, capsys):
        assert main([
            "loadgen", "http://127.0.0.1:1",
            "--campaign", "scale=900,proteins=5",
            "--campaign", "kind=screening",
        ]) == 2
        assert "single-campaign wire protocol" in capsys.readouterr().err

    def test_loadgen_rejects_screening_campaign(self, capsys):
        assert main([
            "loadgen", "http://127.0.0.1:1",
            "--campaign", "kind=screening,ligands=5",
        ]) == 2
        assert "cross-docking" in capsys.readouterr().err

    def test_simulate_bad_fault_spec_rejected(self):
        with pytest.raises(ValueError):
            main(["simulate", "--scale", "900", "--proteins", "5",
                  "--faults", "jitter=3"])

    def test_compare(self, capsys):
        assert main(["compare"]) == 0
        out = capsys.readouterr().out
        assert "World Community Grid" in out
        assert "Dedicated Grid" in out

    def test_project(self, capsys):
        assert main(["project"]) == 0
        out = capsys.readouterr().out
        assert "59,730" in out

    def test_project_custom(self, capsys):
        assert main(["project", "--proteins", "1000", "--weeks", "20"]) == 0

    def test_capacity(self, capsys):
        assert main(["capacity"]) == 0
        out = capsys.readouterr().out
        assert "sustainable" in out

    def test_capacity_overload(self, capsys):
        assert main(["capacity", "--hours", "0.05"]) == 0
        assert "NO" in capsys.readouterr().out

    def test_report(self, capsys):
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "paper vs measured" in out
        assert "1,488:237:19:45:54" in out
        assert "Table 3" in out


class TestScienceCommands:
    def test_partners(self, capsys):
        assert main(["partners", "--proteins", "24"]) == 0
        out = capsys.readouterr().out
        assert "top-1 recovery" in out
        assert "ranking AUC" in out

    def test_sites(self, capsys):
        assert main([
            "sites", "--proteins", "20", "--positions", "100", "--keep", "0.1",
        ]) == 0
        out = capsys.readouterr().out
        assert "site recovery" in out
        assert "focused search" in out

    def test_sites_keep_validation(self):
        with pytest.raises(ValueError):
            main(["sites", "--proteins", "20", "--positions", "100",
                  "--keep", "0.0"])


class TestResultsCommands:
    """The `results` subcommands: convert / check / merge / stats."""

    @pytest.fixture
    def text_dir(self, tmp_path):
        import numpy as np

        from repro.maxdo.resultfile import (
            RESULT_DTYPE, ResultHeader, write_results,
        )
        from repro.rng import stream
        from repro.store import render_lines

        rng = stream(31, "cli-results")
        src = tmp_path / "uploads"
        src.mkdir()
        for ligand in ("P002", "P003"):
            for k in range(2):
                nsep, n_rot = 3, 4
                n = nsep * n_rot
                rec = np.zeros(n, dtype=RESULT_DTYPE)
                rec["isep"] = np.repeat(
                    np.arange(1 + k * nsep, 1 + (k + 1) * nsep), n_rot
                )
                rec["irot"] = np.tile(np.arange(1, n_rot + 1), nsep)
                rec["igamma"] = rng.integers(1, 7, size=n)
                for f in ("x", "y", "z"):
                    rec[f] = np.round(rng.normal(0.0, 40.0, n), 3)
                for f in ("alpha", "beta", "gamma"):
                    rec[f] = np.round(rng.uniform(0.0, 6.28, n), 4)
                rec["e_lj"] = np.round(rng.normal(-30.0, 12.0, n), 4)
                rec["e_elec"] = np.round(rng.normal(-8.0, 4.0, n), 4)
                rec["e_tot"] = np.round(rec["e_lj"] + rec["e_elec"], 4)
                header = ResultHeader(
                    receptor="P001", ligand=ligand,
                    isep_start=1 + k * nsep, nsep=nsep,
                    n_couples=n_rot, n_gamma=6,
                )
                write_results(
                    src / f"P001_{ligand}_{header.isep_start}.result",
                    header, render_lines(rec),
                )
        return src

    def test_convert_roundtrip_zero_diff(self, text_dir, tmp_path, capsys):
        store = tmp_path / "all.rcs"
        assert main(["results", "convert", str(text_dir), str(store)]) == 0
        assert "packed 4 text files" in capsys.readouterr().out
        back = tmp_path / "back"
        assert main(["results", "convert", str(store), str(back)]) == 0
        assert "expanded 4 segments" in capsys.readouterr().out
        originals = sorted(text_dir.iterdir())
        restored = sorted(back.iterdir())
        assert [p.name for p in restored] == [p.name for p in originals]
        for orig, rest in zip(originals, restored):
            assert rest.read_bytes() == orig.read_bytes()

    def test_check_ok(self, text_dir, tmp_path, capsys):
        store = tmp_path / "all.rcs"
        main(["results", "convert", str(text_dir), str(store)])
        capsys.readouterr()
        assert main([
            "results", "check", str(store), "--files-expected", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "OK" in out and "segments found" in out

    def test_check_rejects_corruption_with_exit_1(
        self, text_dir, tmp_path, capsys
    ):
        # Corrupt one upload's energies before converting.
        victim = sorted(text_dir.iterdir())[0]
        lines = victim.read_text(encoding="ascii").splitlines()
        lines[-1] = lines[-1][:-13] + "% 13.4f" % 9.9e6
        victim.write_text("\n".join(lines) + "\n", encoding="ascii")
        store = tmp_path / "all.rcs"
        main(["results", "convert", str(text_dir), str(store)])
        capsys.readouterr()
        assert main(["results", "check", str(store)]) == 1
        out = capsys.readouterr().out
        assert "REJECTED" in out
        assert victim.name in out

    def test_merge_and_stats(self, text_dir, tmp_path, capsys):
        store = tmp_path / "all.rcs"
        merged = tmp_path / "merged.rcs"
        main(["results", "convert", str(text_dir), str(store)])
        capsys.readouterr()
        assert main(["results", "merge", str(store), str(merged)]) == 0
        assert "into 2 couple segment(s)" in capsys.readouterr().out
        assert main(["results", "stats", str(merged)]) == 0
        out = capsys.readouterr().out
        assert "couples" in out
        assert "text / columnar ratio" in out

    def test_simulate_summary_shows_both_formats(self, capsys):
        assert main(["simulate", "--scale", "500", "--proteins", "8"]) == 0
        out = capsys.readouterr().out
        assert "result dataset (text)" in out
        assert "result dataset (columnar)" in out
        assert "text / columnar ratio" in out
