"""Tests for the repro-hcmd command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["estimate"])
        assert args.proteins == 168
        assert args.seed == 2007

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_strategy_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["package", "--strategy", "magic"])


class TestCommands:
    def test_estimate(self, capsys):
        assert main(["estimate"]) == 0
        out = capsys.readouterr().out
        assert "1,488:237:19:45:54" in out
        assert "49,481,544" in out

    def test_estimate_small_library(self, capsys):
        assert main(["estimate", "--proteins", "12"]) == 0
        assert "12" in capsys.readouterr().out

    def test_package(self, capsys):
        assert main(["package", "--hours", "10"]) == 0
        out = capsys.readouterr().out
        assert "workunits" in out
        assert "1,3" in out  # ~1.38M formatted with separators

    def test_package_strategy(self, capsys):
        assert main(["package", "--hours", "10", "--strategy", "merge-tail"]) == 0

    def test_simulate(self, capsys):
        assert main(["simulate", "--scale", "500", "--proteins", "8"]) == 0
        out = capsys.readouterr().out
        assert "redundancy factor" in out
        assert "net speed-down" in out

    def test_simulate_boinc_accounting(self, capsys):
        assert main([
            "simulate", "--scale", "500", "--proteins", "8",
            "--accounting", "boinc",
        ]) == 0

    def test_simulate_faults(self, capsys):
        assert main([
            "simulate", "--scale", "900", "--proteins", "5",
            "--faults", "corrupt=0.1,loss=0.1,maxreissue=10",
        ]) == 0
        out = capsys.readouterr().out
        assert "error budget (fault injection)" in out
        assert "fault plan" in out
        assert "invalid results rejected" in out
        assert "workunits failed (reissue budget)" in out

    def test_simulate_without_faults_prints_no_budget(self, capsys):
        assert main(["simulate", "--scale", "900", "--proteins", "5"]) == 0
        assert "error budget" not in capsys.readouterr().out

    def test_simulate_health_prints_slo_report(self, capsys):
        assert main([
            "simulate", "--scale", "900", "--proteins", "5", "--health",
        ]) == 0
        out = capsys.readouterr().out
        assert "SLO report" in out
        assert "queue-starvation" in out
        assert "latency percentiles" in out

    def test_simulate_report_prints_post_mortem(self, capsys):
        assert main([
            "simulate", "--scale", "900", "--proteins", "5",
            "--faults", "corrupt=0.1,loss=0.1,maxreissue=10",
            "--health", "--report",
        ]) == 0
        out = capsys.readouterr().out
        # the fault error budget reaches the post-mortem via
        # CampaignResult.fault_report()
        assert "error budget (fault injection)" in out
        assert "CAMPAIGN POST-MORTEM" in out
        assert "fault plan" in out
        assert "Top critical-path couples" in out
        assert "Live SLO report" in out

    def test_simulate_bad_fault_spec_rejected(self):
        with pytest.raises(ValueError):
            main(["simulate", "--scale", "900", "--proteins", "5",
                  "--faults", "jitter=3"])

    def test_compare(self, capsys):
        assert main(["compare"]) == 0
        out = capsys.readouterr().out
        assert "World Community Grid" in out
        assert "Dedicated Grid" in out

    def test_project(self, capsys):
        assert main(["project"]) == 0
        out = capsys.readouterr().out
        assert "59,730" in out

    def test_project_custom(self, capsys):
        assert main(["project", "--proteins", "1000", "--weeks", "20"]) == 0

    def test_capacity(self, capsys):
        assert main(["capacity"]) == 0
        out = capsys.readouterr().out
        assert "sustainable" in out

    def test_capacity_overload(self, capsys):
        assert main(["capacity", "--hours", "0.05"]) == 0
        assert "NO" in capsys.readouterr().out

    def test_report(self, capsys):
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "paper vs measured" in out
        assert "1,488:237:19:45:54" in out
        assert "Table 3" in out


class TestScienceCommands:
    def test_partners(self, capsys):
        assert main(["partners", "--proteins", "24"]) == 0
        out = capsys.readouterr().out
        assert "top-1 recovery" in out
        assert "ranking AUC" in out

    def test_sites(self, capsys):
        assert main([
            "sites", "--proteins", "20", "--positions", "100", "--keep", "0.1",
        ]) == 0
        out = capsys.readouterr().out
        assert "site recovery" in out
        assert "focused search" in out

    def test_sites_keep_validation(self):
        with pytest.raises(ValueError):
            main(["sites", "--proteins", "20", "--positions", "100",
                  "--keep", "0.0"])
