"""Tests for repro.boinc.capacity: the task-server capacity model."""

from __future__ import annotations

import pytest

from repro import constants as C
from repro.boinc.capacity import ServerCapacityModel


class TestLoadModel:
    def test_results_per_day(self):
        model = ServerCapacityModel()
        # 1000 devices finishing a result every 13 h.
        rate = model.results_per_day(1000, 13 * 3600)
        assert rate == pytest.approx(1000 * 24 / 13)

    def test_transactions_scale(self):
        model = ServerCapacityModel(transactions_per_result=4)
        assert model.transactions_per_day(100, 3600) == pytest.approx(
            4 * model.results_per_day(100, 3600)
        )

    def test_utilization_linear_in_devices(self):
        model = ServerCapacityModel()
        u1 = model.utilization(10_000, 13 * 3600)
        u2 = model.utilization(20_000, 13 * 3600)
        assert u2 == pytest.approx(2 * u1)

    def test_validation(self):
        model = ServerCapacityModel()
        with pytest.raises(ValueError):
            model.results_per_day(-1, 3600)
        with pytest.raises(ValueError):
            model.results_per_day(10, 0)
        with pytest.raises(ValueError):
            ServerCapacityModel(max_results_per_day=0)
        with pytest.raises(ValueError):
            ServerCapacityModel(target_utilization=1.5)


class TestPaperScale:
    def test_phase1_load_is_sustainable(self):
        # ~836k devices at ~13 h per result: well within the BOINC task
        # server's measured throughput — WCG ran, after all.
        model = ServerCapacityModel()
        assert model.sustainable(C.WCG_DEVICES, C.WCG_RESULT_MEAN_S)

    def test_tiny_workunits_overload(self):
        # The same fleet returning results every 10 minutes would not be.
        model = ServerCapacityModel()
        assert not model.sustainable(C.WCG_DEVICES, 600.0)

    def test_min_workunit_hours_reasonable(self):
        # The constraint direction the paper states: the server bounds the
        # workunit duration from below.  At WCG's fleet size the floor is
        # well under the 10 h target (the human factor dominates), but it
        # is not zero.
        model = ServerCapacityModel()
        floor_h = model.min_workunit_hours(C.WCG_DEVICES, C.SPEED_DOWN_NET)
        assert 0.0 < floor_h < C.TARGET_WU_HOURS_NOMINAL

    def test_min_workunit_monotone_in_fleet(self):
        model = ServerCapacityModel()
        small = model.min_workunit_hours(100_000, C.SPEED_DOWN_NET)
        large = model.min_workunit_hours(1_000_000, C.SPEED_DOWN_NET)
        assert large > small

    def test_max_devices_inverts_min_hours(self):
        model = ServerCapacityModel()
        devices = model.max_devices(C.WCG_RESULT_MEAN_S)
        # At the implied fleet size the load sits exactly at the target.
        assert model.utilization(devices, C.WCG_RESULT_MEAN_S) == pytest.approx(
            model.target_utilization
        )

    def test_zero_fleet(self):
        assert ServerCapacityModel().min_workunit_hours(0, 3.96) == 0.0
