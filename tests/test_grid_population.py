"""Tests for repro.grid.population: Figure 1 and the HCMD share schedule."""

from __future__ import annotations

import numpy as np
import pytest

from repro import constants as C
from repro.grid.population import (
    ShareSchedule,
    WCGPopulationModel,
    hcmd_share_schedule,
)


@pytest.fixture(scope="module")
def model() -> WCGPopulationModel:
    return WCGPopulationModel.calibrated()


class TestCalibration:
    def test_launch_anchor(self, model):
        assert model.trend(0.0) == pytest.approx(C.WCG_VFTP_AT_LAUNCH, rel=0.05)

    def test_project_average_anchor(self, model):
        days = np.arange(C.WCG_LAUNCH_TO_HCMD_DAYS, C.WCG_LAUNCH_TO_HCMD_DAYS + 182)
        avg = float(np.mean(model.trend(days.astype(float))))
        assert avg == pytest.approx(C.WCG_VFTP_DURING_PROJECT, rel=0.02)

    def test_paper_week_anchor(self, model):
        assert model.trend(1110.0) == pytest.approx(C.WCG_VFTP_DEC_2007, rel=0.02)

    def test_globally_increasing_trend(self, model):
        days = np.arange(0, 1200, 10.0)
        assert (np.diff(model.trend(days)) > 0).all()


class TestModulation:
    def test_weekend_dip(self, model):
        # Day 0 is a Tuesday; days 4 and 5 after it are Sat/Sun.
        week = model.daily_series(700, 7)
        weekdays = (np.arange(700, 707) + 1) % 7
        weekend = week[weekdays >= 5]
        workweek = week[weekdays < 5]
        assert weekend.max() < workweek.min()

    def test_christmas_dips(self, model):
        for center in (404, 769):
            dip = float(model.vftp(float(center)))
            nearby = float(model.trend(float(center)))
            assert dip < 0.9 * nearby

    def test_summer_2006_dip(self, model):
        inside = float(model.vftp(630.0)) / float(model.trend(630.0))
        outside = float(model.vftp(500.0)) / float(model.trend(500.0))
        assert inside < outside

    def test_daily_series_shape(self, model):
        series = model.daily_series(0, 100)
        assert series.shape == (100,)
        assert (series > 0).all()


class TestMembers:
    def test_member_yield_anchor(self, model):
        # 325,000 members ~ 60,000 VFTP (Section 7).
        members = float(model.members(1110.0))
        vftp = float(model.trend(1110.0))
        assert vftp / members == pytest.approx(
            C.WCG_MEMBERS_VFTP / C.WCG_MEMBERS, rel=1e-9
        )

    def test_cpu_years_per_day(self, model):
        # 74,825 VFTP produce ~205 cpu-years per day.
        day = 1110.0
        expected = float(model.vftp(day)) / 365.0
        assert model.cpu_years_per_day(day) == pytest.approx(expected)


class TestShareSchedule:
    def test_three_phases(self):
        ss = hcmd_share_schedule()
        assert ss.phase_of_week(2) == "control period"
        assert ss.phase_of_week(10) == "project prioritization"
        assert ss.phase_of_week(20) == "full power working phase"

    def test_phase_boundaries(self):
        ss = ShareSchedule(control_weeks=9, ramp_weeks=4)
        assert ss.phase_of_week(8.99) == "control period"
        assert ss.phase_of_week(9.0) == "project prioritization"
        assert ss.phase_of_week(13.0) == "full power working phase"

    def test_control_share_low(self):
        ss = hcmd_share_schedule()
        assert float(ss.share(0.0)) < 0.10

    def test_full_share_is_45_percent(self):
        # "45% of World Community Grid's devices" at the end of February.
        ss = hcmd_share_schedule()
        assert float(ss.share(20.0)) == pytest.approx(C.PEAK_PROJECT_SHARE)

    def test_ramp_monotone(self):
        ss = hcmd_share_schedule()
        weeks = np.linspace(0, 26, 53)
        shares = np.asarray(ss.share(weeks))
        assert (np.diff(shares) >= -1e-12).all()

    def test_negative_weeks_zero(self):
        ss = hcmd_share_schedule()
        assert float(ss.share(-1.0)) == 0.0

    def test_phase_of_week_rejects_negative(self):
        with pytest.raises(ValueError):
            hcmd_share_schedule().phase_of_week(-1.0)


class TestHCMDSupplyAnchors:
    def test_whole_period_vftp(self, model):
        # share x WCG trend averaged over 26 weeks ~ Figure 6a's 16,450.
        ss = hcmd_share_schedule()
        weeks = np.arange(26) + 0.5
        supply = np.asarray(ss.share(weeks)) * np.asarray(
            model.vftp(C.WCG_LAUNCH_TO_HCMD_DAYS + 7.0 * weeks)
        )
        assert float(supply.mean()) == pytest.approx(C.HCMD_VFTP_WHOLE_PERIOD, rel=0.05)

    def test_full_power_vftp(self, model):
        ss = hcmd_share_schedule()
        weeks = np.arange(13, 26) + 0.5
        supply = np.asarray(ss.share(weeks)) * np.asarray(
            model.vftp(C.WCG_LAUNCH_TO_HCMD_DAYS + 7.0 * weeks)
        )
        assert float(supply.mean()) == pytest.approx(C.HCMD_VFTP_FULL_POWER, rel=0.05)
