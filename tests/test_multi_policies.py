"""Scheduler-policy invariants, property-based.

The policies operate on the narrow runtime surface the router hands them
(``index``, ``issued_reference_s``, ``campaign``), so the properties run
against lightweight stub runtimes and synthetic issuance loops — no DES
required:

* every ordering is a permutation of the candidates, so the router stays
  work-conserving (all grid capacity is offered to someone);
* fair share converges to the weight vector (long-run share within 10%
  of weight) and never starves a positive-weight campaign;
* strict priority always serves the highest priority first;
* the lottery is deterministic in the grid seed.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.multi import (
    Campaign,
    FairShare,
    StrictPriority,
    WeightedLottery,
    make_policy,
)


class _StubRuntime:
    """The slice of CampaignRuntime the policies read."""

    def __init__(self, index: int, campaign: Campaign, issued: float = 0.0):
        self.index = index
        self.campaign = campaign
        self.name = campaign.name
        self.issued_reference_s = issued


def _runtimes(campaigns, issued=None):
    issued = issued if issued is not None else [0.0] * len(campaigns)
    return [
        _StubRuntime(i, c, issued=s)
        for i, (c, s) in enumerate(zip(campaigns, issued))
    ]


weights_lists = st.lists(
    st.floats(min_value=0.1, max_value=10.0), min_size=1, max_size=6
)
issued_lists = st.lists(
    st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=6
)


@st.composite
def candidate_sets(draw):
    weights = draw(weights_lists)
    issued = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1e6),
            min_size=len(weights), max_size=len(weights),
        )
    )
    priorities = draw(
        st.lists(
            st.integers(min_value=-3, max_value=3),
            min_size=len(weights), max_size=len(weights),
        )
    )
    campaigns = [
        Campaign.screening(f"c{i}", weight=w, priority=p)
        for i, (w, p) in enumerate(zip(weights, priorities))
    ]
    return _runtimes(campaigns, issued)


@pytest.mark.parametrize("policy_spec", [
    "fair-share", "strict-priority", "weighted-lottery",
])
@given(candidates=candidate_sets())
@settings(max_examples=50, deadline=None)
def test_order_is_a_permutation(policy_spec, candidates):
    """Work conservation: every candidate appears exactly once, so the
    router offers all issuable work to every volunteer request."""
    policy = make_policy(policy_spec, seed=3)
    order = policy.order(candidates, week=1.0)
    assert sorted(rt.index for rt in order) == list(range(len(candidates)))
    # and ordering does not mutate scheduler state
    assert [rt.issued_reference_s for rt in candidates] == [
        rt.issued_reference_s for rt in candidates
    ]


@given(weights=st.lists(
    st.floats(min_value=0.5, max_value=4.0), min_size=2, max_size=4,
))
@settings(max_examples=25, deadline=None)
def test_fair_share_tracks_weights_within_10_percent(weights):
    """Long-run issued share lands within 10% (absolute) of the weight
    share when every campaign stays hungry — the acceptance bound."""
    campaigns = [
        Campaign.screening(f"c{i}", weight=w) for i, w in enumerate(weights)
    ]
    runtimes = _runtimes(campaigns)
    policy = FairShare()
    for _ in range(2_000):
        policy.order(runtimes, week=0.0)[0].issued_reference_s += 1.0
    total = sum(rt.issued_reference_s for rt in runtimes)
    weight_sum = sum(weights)
    for rt, w in zip(runtimes, weights):
        assert abs(rt.issued_reference_s / total - w / weight_sum) <= 0.10


@given(weights=st.lists(
    st.floats(min_value=0.1, max_value=10.0), min_size=2, max_size=6,
))
@settings(max_examples=25, deadline=None)
def test_fair_share_is_starvation_free(weights):
    """Every positive-weight campaign receives work, however skewed the
    weight vector."""
    campaigns = [
        Campaign.screening(f"c{i}", weight=w) for i, w in enumerate(weights)
    ]
    runtimes = _runtimes(campaigns)
    policy = FairShare()
    for _ in range(len(weights) * 200):
        policy.order(runtimes, week=0.0)[0].issued_reference_s += 1.0
    assert all(rt.issued_reference_s > 0 for rt in runtimes)


@given(candidates=candidate_sets())
@settings(max_examples=50, deadline=None)
def test_strict_priority_serves_highest_priority_first(candidates):
    order = StrictPriority().order(candidates, week=0.0)
    top = max(rt.campaign.priority for rt in candidates)
    assert order[0].campaign.priority == top
    # and the ordering never ranks a lower priority above a higher one
    ranks = [rt.campaign.priority for rt in order]
    assert ranks == sorted(ranks, reverse=True)


@given(
    seed=st.integers(min_value=0, max_value=2**20),
    candidates=candidate_sets(),
)
@settings(max_examples=50, deadline=None)
def test_lottery_is_deterministic_in_the_seed(seed, candidates):
    a = WeightedLottery(seed).order(candidates, week=0.0)
    b = WeightedLottery(seed).order(candidates, week=0.0)
    assert [rt.index for rt in a] == [rt.index for rt in b]


def test_weight_schedule_reshapes_fair_share_mid_run():
    """A weight step flips the allocation exactly at its week boundary —
    the mechanism behind the paper's three-phase prioritization."""
    hcmd = Campaign.screening(
        "hcmd", weight_schedule=((0.0, 0.07), (9.0, 0.45)),
    )
    other = Campaign.screening(
        "other", weight_schedule=((0.0, 0.93), (9.0, 0.55)),
    )
    policy = FairShare()

    def share_at(week: float) -> float:
        runtimes = _runtimes([hcmd, other])
        for _ in range(1_000):
            policy.order(runtimes, week=week)[0].issued_reference_s += 1.0
        total = sum(rt.issued_reference_s for rt in runtimes)
        return runtimes[0].issued_reference_s / total

    assert share_at(0.0) == pytest.approx(0.07, abs=0.01)
    assert share_at(10.0) == pytest.approx(0.45, abs=0.01)


def test_make_policy_rejects_unknown_spec():
    with pytest.raises(ValueError, match="unknown scheduling policy"):
        make_policy("round-robin", seed=1)
