"""Property-based fuzzing of the volunteer-grid simulator.

Hypothesis drives many tiny randomized campaigns and checks the invariants
that must hold for *any* configuration:

* conservation — every workunit is validated exactly once; useful
  reference work equals the packaged total on completion;
* accounting sanity — disclosed >= effective, redundancy >= 1, consumed
  CPU positive whenever anything was disclosed;
* determinism — a campaign replayed with the same seed produces the same
  trajectory.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.boinc.simulator import scaled_phase1

# Small-but-varied campaign configurations.
campaign_configs = st.fixed_dictionaries({
    "seed": st.integers(min_value=0, max_value=10_000),
    "n_proteins": st.integers(min_value=3, max_value=8),
    "scale": st.sampled_from([400.0, 700.0, 1000.0]),
    "target_hours": st.sampled_from([1.5, 3.65, 8.0]),
})


def _run(config):
    sim = scaled_phase1(
        scale=config["scale"],
        n_proteins=config["n_proteins"],
        seed=config["seed"],
        target_hours=config["target_hours"],
        horizon_weeks=60.0,
    )
    return sim, sim.run()


class TestInvariants:
    @settings(max_examples=12, deadline=None)
    @given(config=campaign_configs)
    def test_conservation_and_accounting(self, config):
        sim, result = _run(config)
        stats = result.server.stats

        # Accounting sanity regardless of completion.
        assert stats.disclosed >= stats.effective
        assert stats.effective <= result.server.n_workunits
        if stats.disclosed:
            assert stats.consumed_cpu_s > 0
        if stats.effective:
            assert stats.redundancy_factor >= 1.0
            assert 0 < stats.useful_fraction <= 1.0

        # Telemetry consistency with the server's books.
        assert int(result.telemetry.daily_results.sum()) == stats.disclosed
        assert int(result.telemetry.daily_useful.sum()) == stats.effective

        if result.completion_time is not None:
            # Conservation: exactly the packaged work was validated.
            assert stats.effective == result.server.n_workunits
            assert stats.useful_reference_s == pytest_approx(
                sim.campaign.total_work
            )
            assert np.isfinite(result.batch_completion_s).all()

    @settings(max_examples=6, deadline=None)
    @given(config=campaign_configs)
    def test_deterministic_replay(self, config):
        _, a = _run(config)
        _, b = _run(config)
        assert a.completion_time == b.completion_time
        assert a.server.stats.disclosed == b.server.stats.disclosed
        assert a.server.stats.consumed_cpu_s == b.server.stats.consumed_cpu_s
        np.testing.assert_array_equal(
            a.telemetry.daily_results, b.telemetry.daily_results
        )

    @settings(max_examples=6, deadline=None)
    @given(
        config=campaign_configs,
        reliability=st.floats(min_value=0.5, max_value=1.0),
    )
    def test_unreliable_fleets_still_conserve(self, config, reliability):
        sim = scaled_phase1(
            scale=config["scale"],
            n_proteins=config["n_proteins"],
            seed=config["seed"],
            horizon_weeks=60.0,
        )
        sim.host_model = sim.host_model.with_profile(reliability=reliability)
        result = sim.run()
        stats = result.server.stats
        assert stats.disclosed >= stats.effective
        if result.completion_time is not None:
            assert stats.effective == result.server.n_workunits
        # Worse reliability can only add invalid results, never negative.
        assert stats.invalid >= 0


def pytest_approx(value):
    import pytest

    return pytest.approx(value, rel=1e-9)
