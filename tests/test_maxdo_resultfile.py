"""Tests for repro.maxdo.resultfile: the text result format."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.maxdo.resultfile import (
    BYTES_PER_LINE,
    ResultHeader,
    expected_line_count,
    format_record,
    read_results,
    read_results_reference,
    write_results,
)


def _header(nsep=3, n_couples=4):
    return ResultHeader(
        receptor="P001", ligand="P002", isep_start=1, nsep=nsep,
        n_couples=n_couples, n_gamma=10,
    )


def _line(isep=1, irot=1, igamma=1, e_lj=-1.25, e_elec=0.5):
    return format_record(
        isep, irot, igamma,
        np.array([10.0, -2.0, 3.5]), np.array([0.1, 0.2, 0.3]), e_lj, e_elec,
    )


class TestFormat:
    def test_line_width_matches_volume_constant(self):
        # The dataset volume model (123 GB) relies on this width.
        assert len(_line()) + 1 == BYTES_PER_LINE

    def test_width_stable_under_extreme_values(self):
        line = format_record(
            9_999_999, 21, 10,
            np.array([-499.999, 499.999, 0.0]),
            np.array([-3.1416, 3.1416, -3.1416]),
            -99999.9999, 99999.9999,
        )
        assert len(line) + 1 == BYTES_PER_LINE

    def test_expected_line_count(self):
        # One line per (position, orientation couple): the paper's volume.
        assert expected_line_count(nsep=5, n_couples=21) == 105


class TestRoundtrip:
    def test_write_read(self, tmp_path):
        path = tmp_path / "r.result"
        lines = [_line(isep=i + 1, irot=j + 1) for i in range(3) for j in range(4)]
        n = write_results(path, _header(), lines)
        assert n == 12
        table = read_results(path)
        assert table.header == _header()
        assert len(table) == 12
        assert table.records["isep"].tolist() == sorted(table.records["isep"].tolist())

    def test_values_roundtrip(self, tmp_path):
        path = tmp_path / "r.result"
        write_results(path, _header(nsep=1, n_couples=1), [_line(e_lj=-123.4567)])
        rec = read_results(path).records[0]
        assert rec["e_lj"] == pytest.approx(-123.4567)
        assert rec["e_tot"] == pytest.approx(-123.4567 + 0.5)
        assert rec["x"] == pytest.approx(10.0)

    def test_empty_file_keeps_header(self, tmp_path):
        path = tmp_path / "r.result"
        write_results(path, _header(), [])
        table = read_results(path)
        assert len(table) == 0
        assert table.header.receptor == "P001"

    @settings(max_examples=15, deadline=None)
    @given(
        st.floats(min_value=-9e4, max_value=9e4, allow_nan=False),
        st.floats(min_value=-9e4, max_value=9e4, allow_nan=False),
    )
    def test_energy_roundtrip_property(self, tmp_path_factory, e_lj, e_elec):
        path = tmp_path_factory.mktemp("rf") / "r.result"
        write_results(
            path, _header(nsep=1, n_couples=1), [_line(e_lj=e_lj, e_elec=e_elec)]
        )
        rec = read_results(path).records[0]
        assert rec["e_lj"] == pytest.approx(e_lj, abs=1e-4)
        assert rec["e_elec"] == pytest.approx(e_elec, abs=1e-4)


class TestVectorizedParserEquivalence:
    """The vectorized ``read_results`` against the per-line reference.

    ``read_results_reference`` is the slow oracle kept for exactly this:
    the fast parser must return the same header and bit-identical records
    on well-formed files, and reject the same malformed ones.
    """

    def _golden(self, tmp_path, nsep=4, n_couples=3):
        rng = np.random.default_rng(7)
        lines = []
        for i in range(nsep):
            for j in range(n_couples):
                lines.append(format_record(
                    i + 1, j + 1, int(rng.integers(1, 11)),
                    rng.normal(0.0, 50.0, 3), rng.uniform(-3.14, 3.14, 3),
                    float(np.round(rng.normal(-30.0, 10.0), 4)),
                    float(np.round(rng.normal(-5.0, 3.0), 4)),
                ))
        path = tmp_path / "g.result"
        write_results(path, _header(nsep=nsep, n_couples=n_couples), lines)
        return path

    def test_bitwise_identical_on_golden_file(self, tmp_path):
        path = self._golden(tmp_path)
        fast = read_results(path)
        slow = read_results_reference(path)
        assert fast.header == slow.header
        assert len(fast) == len(slow)
        for name in fast.records.dtype.names:
            assert np.array_equal(fast.records[name], slow.records[name]), name

    def test_identical_on_empty_file(self, tmp_path):
        path = tmp_path / "e.result"
        write_results(path, _header(), [])
        fast = read_results(path)
        slow = read_results_reference(path)
        assert fast.header == slow.header
        assert len(fast) == len(slow) == 0

    def test_wide_extreme_values_parse_identically(self, tmp_path):
        line = format_record(
            9_999_999, 21, 10,
            np.array([-499.999, 499.999, 0.0]),
            np.array([-3.1416, 3.1416, -3.1416]),
            -99999.9999, 99999.9999,
        )
        path = tmp_path / "w.result"
        write_results(path, _header(nsep=1, n_couples=1), [line])
        fast = read_results(path).records
        slow = read_results_reference(path).records
        assert fast.tobytes() == slow.tobytes()

    @pytest.mark.parametrize("payload", [
        "1 2 3 4\n",                        # wrong column count
        "not numbers at all here pal\n",    # garbage tokens
    ])
    def test_both_reject_malformed(self, tmp_path, payload):
        path = tmp_path / "bad.result"
        path.write_text(
            "\n".join(_header().lines()) + "\n" + payload, encoding="ascii"
        )
        with pytest.raises(ValueError):
            read_results(path)
        with pytest.raises(ValueError):
            read_results_reference(path)


class TestMalformed:
    def test_missing_header_field(self, tmp_path):
        path = tmp_path / "bad.result"
        path.write_text("# receptor P001\n# ligand P002\n", encoding="ascii")
        with pytest.raises(ValueError, match="missing"):
            read_results(path)

    def test_wrong_column_count(self, tmp_path):
        path = tmp_path / "bad.result"
        header = "\n".join(_header().lines())
        path.write_text(header + "\n1 2 3 4\n", encoding="ascii")
        with pytest.raises(ValueError):
            read_results(path)

    def test_garbage_data(self, tmp_path):
        path = tmp_path / "bad.result"
        header = "\n".join(_header().lines())
        path.write_text(header + "\nnot numbers at all here pal\n", encoding="ascii")
        with pytest.raises(ValueError):
            read_results(path)
