"""Tests for adaptive replication (the BOINC feature phase II inherits)."""

from __future__ import annotations

import pytest

from repro.boinc.server import GridServer, ServerConfig
from repro.boinc.simulator import scaled_phase1
from repro.boinc.validator import AdaptiveReplication, ValidationPolicy
from repro.core.workunit import WorkUnit
from repro.grid.des import Simulator


class TestTrustTracking:
    def test_untrusted_initially(self):
        adaptive = AdaptiveReplication(trust_after=3)
        assert not adaptive.is_trusted(1)
        assert adaptive.needs_partner(1)

    def test_trust_after_streak(self):
        adaptive = AdaptiveReplication(trust_after=3, spot_check_rate=0.0)
        for _ in range(3):
            adaptive.record_valid(1)
        assert adaptive.is_trusted(1)
        assert not adaptive.needs_partner(1)

    def test_invalid_resets_trust(self):
        adaptive = AdaptiveReplication(trust_after=2, spot_check_rate=0.0)
        adaptive.record_valid(1)
        adaptive.record_valid(1)
        assert adaptive.is_trusted(1)
        adaptive.record_invalid(1)
        assert not adaptive.is_trusted(1)

    def test_spot_checks_are_periodic(self):
        adaptive = AdaptiveReplication(trust_after=1, spot_check_rate=0.25)
        adaptive.record_valid(1)
        outcomes = [adaptive.needs_partner(1) for _ in range(8)]
        assert sum(outcomes) == 2  # every 4th trusted result is checked

    def test_per_host_independence(self):
        adaptive = AdaptiveReplication(trust_after=2, spot_check_rate=0.0)
        adaptive.record_valid(1)
        adaptive.record_valid(1)
        assert adaptive.is_trusted(1)
        assert not adaptive.is_trusted(2)

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveReplication(trust_after=0)
        with pytest.raises(ValueError):
            AdaptiveReplication(spot_check_rate=1.5)


def _server(sim, n=3, adaptive=None):
    wus = [
        (
            WorkUnit(wu_id=k, receptor=0, ligand=0, isep_start=1 + 5 * k,
                     nsep=5, cost_reference_s=1000.0),
            0,
        )
        for k in range(n)
    ]
    config = ServerConfig(
        deadline_s=1e6,
        validation=ValidationPolicy(switch_time=1e12),  # quorum era forever
        adaptive=adaptive,
    )
    return GridServer(sim, wus, config=config)


class TestServerIntegration:
    def test_trusted_host_single_copy_validates(self):
        sim = Simulator()
        adaptive = AdaptiveReplication(trust_after=1, spot_check_rate=0.0)
        server = _server(sim, adaptive=adaptive)
        # First workunit: host 1 is untrusted, two copies circulate.
        a = server.request_work(1)
        b = server.request_work(2)
        assert a.wu.wu_id == b.wu.wu_id == 0
        server.on_result(a, valid=True, accounted_cpu_s=1.0)
        server.on_result(b, valid=True, accounted_cpu_s=1.0)
        assert server.stats.effective == 1
        # Host 1 is now trusted: its next fetch is a single copy that
        # validates alone.
        c = server.request_work(1)
        d = server.request_work(2)
        assert c.wu.wu_id == 1
        assert d.wu.wu_id == 2  # no second copy of wu 1 was queued
        server.on_result(c, valid=True, accounted_cpu_s=1.0)
        assert server.stats.effective == 2
        assert server.stats.validated_by_regime["adaptive"] == 1

    def test_untrusted_host_still_replicated(self):
        sim = Simulator()
        adaptive = AdaptiveReplication(trust_after=5, spot_check_rate=0.0)
        server = _server(sim, adaptive=adaptive)
        a = server.request_work(1)
        b = server.request_work(2)
        assert a.wu.wu_id == b.wu.wu_id == 0

    def test_without_adaptive_everything_replicates(self):
        sim = Simulator()
        server = _server(sim, adaptive=None)
        a = server.request_work(1)
        b = server.request_work(2)
        assert a.wu.wu_id == b.wu.wu_id == 0


class TestCampaignEffect:
    def test_adaptive_cuts_redundancy(self):
        def run(adaptive):
            from repro.units import weeks

            sim = scaled_phase1(
                scale=250, n_proteins=12,
                server_config=ServerConfig(
                    validation=ValidationPolicy(switch_time=weeks(16.0)),
                    adaptive=adaptive,
                ),
            )
            return sim.run().metrics()

        fixed = run(None)
        adaptive = run(AdaptiveReplication(trust_after=5, spot_check_rate=0.1))
        # Adaptive replication trims the quorum-era duplicates.
        assert adaptive.redundancy < fixed.redundancy
        assert adaptive.useful_result_fraction > fixed.useful_result_fraction
