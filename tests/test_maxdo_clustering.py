"""Tests for repro.maxdo.clustering: binding-mode clustering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.maxdo.clustering import cluster_minima
from repro.maxdo.docking import DockingResult


def _result(centers, energies_by_center, jitter=0.5, seed=0):
    """A synthetic docking result whose minima sit near known centers."""
    rng = np.random.default_rng(seed)
    poses = []
    energies = []
    for center, es in zip(centers, energies_by_center):
        for e in es:
            poses.append(np.asarray(center) + rng.normal(0, jitter, 3))
            energies.append(e)
    n = len(poses)
    shape = (n, 1, 1)
    return DockingResult(
        receptor="R",
        ligand="L",
        isep_start=1,
        e_lj=np.asarray(energies).reshape(shape),
        e_elec=np.zeros(shape),
        positions=np.asarray(poses).reshape(n, 1, 1, 3),
        eulers=np.zeros((n, 1, 1, 3)),
    )


class TestClustering:
    def test_separates_well_separated_basins(self):
        result = _result(
            centers=[(0, 0, 0), (30, 0, 0), (0, 30, 0)],
            energies_by_center=[[-10, -9, -8], [-7, -6], [-5]],
        )
        modes = cluster_minima(result, radius=5.0)
        assert len(modes) == 3
        assert [m.n_members for m in modes] == [3, 2, 1]

    def test_modes_sorted_by_energy(self):
        result = _result(
            centers=[(0, 0, 0), (30, 0, 0)],
            energies_by_center=[[-3], [-12]],
        )
        modes = cluster_minima(result, radius=5.0)
        assert modes[0].best_energy == pytest.approx(-12, abs=1.0)
        assert modes[0].best_energy < modes[1].best_energy

    def test_larger_radius_fewer_modes(self):
        result = _result(
            centers=[(0, 0, 0), (12, 0, 0)],
            energies_by_center=[[-10, -9], [-8, -7]],
        )
        tight = cluster_minima(result, radius=4.0)
        loose = cluster_minima(result, radius=20.0)
        assert len(loose) < len(tight)
        assert len(loose) == 1
        assert loose[0].n_members == 4

    def test_members_partition_all_poses(self):
        result = _result(
            centers=[(0, 0, 0), (30, 0, 0)],
            energies_by_center=[[-10, -9, -8], [-7, -6]],
        )
        modes = cluster_minima(result, radius=5.0)
        all_members = np.concatenate([m.member_indices for m in modes])
        assert sorted(all_members.tolist()) == list(range(5))

    def test_energy_cutoff_filters(self):
        result = _result(
            centers=[(0, 0, 0), (30, 0, 0)],
            energies_by_center=[[-10], [+5]],
        )
        modes = cluster_minima(result, radius=5.0, energy_cutoff=0.0)
        assert len(modes) == 1
        assert modes[0].best_energy == pytest.approx(-10)

    def test_cutoff_can_empty(self):
        result = _result(centers=[(0, 0, 0)], energies_by_center=[[+5]])
        assert cluster_minima(result, radius=5.0, energy_cutoff=-1.0) == []

    def test_max_modes_truncates(self):
        result = _result(
            centers=[(0, 0, 0), (30, 0, 0), (60, 0, 0)],
            energies_by_center=[[-10], [-9], [-8]],
        )
        modes = cluster_minima(result, radius=5.0, max_modes=2)
        assert len(modes) == 2
        assert modes[0].best_energy < modes[1].best_energy

    def test_deterministic(self):
        result = _result(
            centers=[(0, 0, 0), (30, 0, 0)],
            energies_by_center=[[-10, -9], [-8]],
        )
        a = cluster_minima(result, radius=5.0)
        b = cluster_minima(result, radius=5.0)
        assert [m.best_energy for m in a] == [m.best_energy for m in b]

    def test_validation(self):
        result = _result(centers=[(0, 0, 0)], energies_by_center=[[-1]])
        with pytest.raises(ValueError):
            cluster_minima(result, radius=0.0)
        with pytest.raises(ValueError):
            cluster_minima(result, radius=5.0, max_modes=0)

    def test_real_docking_map_clusters(self, tiny_receptor, tiny_ligand):
        from repro.maxdo.docking import dock_couple

        result = dock_couple(
            tiny_receptor, tiny_ligand, isep_start=1, nsep=6, total_nsep=24,
            n_couples=3, n_gamma=2, minimize=True, max_iterations=15,
        )
        modes = cluster_minima(result, radius=6.0)
        assert 1 <= len(modes) <= result.e_total.size
        assert sum(m.n_members for m in modes) == result.e_total.size
