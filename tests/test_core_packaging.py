"""Tests for repro.core.packaging: the Section 4.2 slicing algorithm."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.packaging import PackagingPolicy, WorkUnitPlan, positions_per_workunit
from repro.maxdo.cost_model import CostModel
from repro.units import hours

ALL_STRATEGIES = ("floor", "round", "merge-tail", "even")


class TestPolicy:
    def test_target_seconds(self):
        assert PackagingPolicy(target_hours=10).target_seconds == 36_000

    def test_rejects_nonpositive_hours(self):
        with pytest.raises(ValueError):
            PackagingPolicy(target_hours=0)

    def test_rejects_unknown_strategy(self):
        with pytest.raises(ValueError):
            PackagingPolicy(strategy="magic")

    def test_rejects_bad_merge_fraction(self):
        with pytest.raises(ValueError):
            PackagingPolicy(merge_tail_fraction=1.5)


class TestPositionsPerWorkunit:
    """The paper's three-case nsep rule."""

    def test_middle_case_floor(self):
        mct = np.array([[1000.0]])
        nsep = np.array([500])
        out = positions_per_workunit(mct, nsep, hours(10))
        assert out[0, 0] == 36  # floor(36000/1000)

    def test_expensive_couple_clamps_to_one(self):
        # floor(h / Mct) <= 1  =>  nsep = 1
        mct = np.array([[50_000.0]])
        out = positions_per_workunit(mct, np.array([500]), hours(10))
        assert out[0, 0] == 1

    def test_cheap_couple_clamps_to_nsep(self):
        # floor(h / Mct) >= Nsep  =>  nsep = Nsep(p1)
        mct = np.array([[1.0]])
        out = positions_per_workunit(mct, np.array([500]), hours(10))
        assert out[0, 0] == 500

    def test_per_receptor_clamp_broadcasts(self):
        mct = np.full((2, 2), 1.0)
        nsep = np.array([10, 20])
        out = positions_per_workunit(mct, nsep, hours(10))
        assert out[0].tolist() == [10, 10]
        assert out[1].tolist() == [20, 20]

    def test_rejects_nonpositive_target(self):
        with pytest.raises(ValueError):
            positions_per_workunit(np.ones((1, 1)), np.ones(1, dtype=int), 0.0)


@pytest.fixture(scope="module", params=ALL_STRATEGIES)
def any_plan(request, small_cost_model):
    return WorkUnitPlan(
        small_cost_model, PackagingPolicy(target_hours=5, strategy=request.param)
    )


class TestPlanInvariants:
    """Invariants every strategy must satisfy."""

    def test_work_conservation(self, any_plan, small_cost_model):
        # Slicing never creates or destroys work.
        assert any_plan.total_reference_cpu() == pytest.approx(
            small_cost_model.total_reference_cpu(), rel=1e-9
        )

    def test_couple_sizes_sum_to_nsep(self, any_plan, small_cost_model):
        n = small_cost_model.n_proteins
        for i in range(n):
            for j in range(n):
                sizes = any_plan.couple_sizes(i, j)
                assert sum(sizes) == small_cost_model.nsep[i]
                assert all(s >= 1 for s in sizes)

    def test_materialized_count_matches_total(self, any_plan):
        assert sum(1 for _ in any_plan.iter_workunits()) == any_plan.total_workunits()

    def test_workunits_tile_isep_exactly(self, any_plan, small_cost_model):
        # Every isep of every couple covered exactly once, no overlap/gap.
        seen: dict[tuple[int, int], int] = {}
        for wu in any_plan.iter_workunits():
            key = wu.couple
            assert wu.isep_start == seen.get(key, 0) + 1
            seen[key] = wu.isep_end
        for i in range(small_cost_model.n_proteins):
            for j in range(small_cost_model.n_proteins):
                assert seen[(i, j)] == small_cost_model.nsep[i]

    def test_ids_sequential(self, any_plan):
        ids = [wu.wu_id for wu in any_plan.iter_workunits()]
        assert ids == list(range(len(ids)))

    def test_histogram_accounts_every_workunit(self, any_plan):
        edges = np.linspace(0, 40 * 3600, 41)
        _, counts = any_plan.duration_histogram(edges)
        assert counts.sum() == pytest.approx(any_plan.total_workunits())

    def test_costs_match_model(self, any_plan, small_cost_model):
        for wu in any_plan.iter_workunits():
            expected = wu.nsep * small_cost_model.seconds_per_position(*wu.couple)
            assert wu.cost_reference_s == pytest.approx(expected)


class TestStrategyBehaviour:
    def test_smaller_target_more_workunits(self, small_cost_model):
        n10 = WorkUnitPlan(small_cost_model, PackagingPolicy(10)).total_workunits()
        n4 = WorkUnitPlan(small_cost_model, PackagingPolicy(4)).total_workunits()
        assert n4 > n10

    def test_merge_tail_never_more_units_than_floor(self, small_cost_model):
        floor = WorkUnitPlan(small_cost_model, PackagingPolicy(5, "floor"))
        merged = WorkUnitPlan(small_cost_model, PackagingPolicy(5, "merge-tail"))
        assert merged.total_workunits() <= floor.total_workunits()

    def test_even_same_count_as_floor(self, small_cost_model):
        floor = WorkUnitPlan(small_cost_model, PackagingPolicy(5, "floor"))
        even = WorkUnitPlan(small_cost_model, PackagingPolicy(5, "even"))
        assert even.total_workunits() == floor.total_workunits()

    def test_even_narrower_distribution(self, small_cost_model):
        floor = WorkUnitPlan(small_cost_model, PackagingPolicy(5, "floor"))
        even = WorkUnitPlan(small_cost_model, PackagingPolicy(5, "even"))
        assert even.duration_stats()["std"] <= floor.duration_stats()["std"] + 1e-9

    def test_floor_durations_bounded_by_target_plus_one_position(
        self, small_cost_model
    ):
        plan = WorkUnitPlan(small_cost_model, PackagingPolicy(5, "floor"))
        target = hours(5)
        for wu in plan.iter_workunits():
            mct = small_cost_model.seconds_per_position(*wu.couple)
            # nsep >= 2 slices stay under target; single-position couples
            # may exceed it (the clamp-to-1 case of the paper's rule).
            if wu.nsep > 1:
                assert wu.cost_reference_s <= target + 1e-9

    def test_duration_stats_mean_below_target_for_floor(self, small_cost_model):
        plan = WorkUnitPlan(small_cost_model, PackagingPolicy(5, "floor"))
        assert plan.duration_stats()["mean"] < hours(5)


class TestPropertyBased:
    @settings(max_examples=25, deadline=None)
    @given(
        mct=st.floats(min_value=5.0, max_value=50_000.0),
        nsep=st.integers(min_value=1, max_value=9000),
        target_h=st.floats(min_value=0.5, max_value=20.0),
    )
    def test_single_couple_rule(self, mct, nsep, target_h):
        out = positions_per_workunit(
            np.array([[mct]]), np.array([nsep]), hours(target_h)
        )
        per = int(out[0, 0])
        assert 1 <= per <= nsep
        # Oracle must use the same floating-point floor as the code:
        # Python's // can differ from floor(a/b) by one ulp at integer
        # quotients (e.g. h == mct * k exactly).
        raw = int(np.floor(hours(target_h) / mct))
        if 1 <= raw <= nsep:
            assert per == raw

    @settings(max_examples=15, deadline=None)
    @given(
        strategy=st.sampled_from(ALL_STRATEGIES),
        target_h=st.floats(min_value=1.0, max_value=12.0),
    )
    def test_coverage_property(self, small_cost_model, strategy, target_h):
        plan = WorkUnitPlan(
            small_cost_model, PackagingPolicy(target_h, strategy)
        )
        i, j = 0, 1
        sizes = plan.couple_sizes(i, j)
        assert sum(sizes) == small_cost_model.nsep[i]
        assert min(sizes) >= 1


@pytest.mark.slow
class TestPaperScale:
    """Figure 4's absolute workunit counts on the phase-1 matrix."""

    def test_h10_count(self, phase1_cost_model):
        plan = WorkUnitPlan(phase1_cost_model, PackagingPolicy(10))
        assert plan.total_workunits() == pytest.approx(1_364_476, rel=0.05)

    def test_h4_count(self, phase1_cost_model):
        plan = WorkUnitPlan(phase1_cost_model, PackagingPolicy(4))
        assert plan.total_workunits() == pytest.approx(3_599_937, rel=0.05)

    def test_deployed_mean_duration(self, phase1_cost_model):
        # Figure 8: deployed workunits averaged 3h18m47s on the reference.
        plan = WorkUnitPlan(phase1_cost_model, PackagingPolicy(3.65))
        assert plan.duration_stats()["mean"] == pytest.approx(11_927, rel=0.03)
