"""Tests for repro.boinc.sharding: the sharded campaign engine.

The contract under test (see the module docstring of
:mod:`repro.boinc.sharding`):

* a fixed ``ShardPlan(n_shards=K)`` produces the **same merged result**
  for every worker count and on every run (pool vs in-process is an
  execution detail, not an experiment parameter);
* ``K=1`` (or no plan at all) is **bit-identical** to the monolithic
  simulator — pinned here against digests captured before the sharding
  engine existed;
* merged artifacts are indistinguishable from a monolithic run to the
  downstream tooling (span reconstruction finds zero orphans, the fault
  report recombines, the JSONL trace stays time-ordered).
"""

from __future__ import annotations

import hashlib
import json
import os

import numpy as np
import pytest

from repro import CampaignConfig, ShardPlan, Tracer, scaled_phase1
from repro.boinc.sharding import HOST_ID_STRIDE, plan_shards
from repro.faults import FaultPlan
from repro.obs.tracer import iter_trace

# ---------------------------------------------------------------------------
# Golden values captured at the pre-sharding HEAD (monolithic simulator),
# scale=700 n_proteins=6 seed=42, trace channels ("server","agent","fault").
# The sharded engine with K=1 — and a config with no plan at all — must
# keep reproducing these bytes.
# ---------------------------------------------------------------------------
GOLDEN = {
    "completion_time": 6807430.00267922,
    "disclosed": 78,
    "effective": 38,
    "n_hosts": 4,
    "n_events": 581,
    "trace_digest":
        "351a01958365616baa218e62417c43d7937c67ab8bd772d470f3f823dab70dd3",
    "registry_digest":
        "07a05502e2add67f3a763cee360d98671d9bc65f3eed318f826d5ef9b9c552c6",
}
CHANNELS = ("server", "agent", "fault")


def _registry_digest(result) -> str:
    payload = json.dumps(result.telemetry.registry.as_dict(), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()


def _trace_digest(path) -> str:
    """Digest of the semantic trace content (t_wall varies run to run)."""
    h = hashlib.sha256()
    for e in iter_trace(path):
        h.update(
            repr((e.etype, e.t_sim, tuple(sorted(e.fields.items())))).encode()
        )
    return h.hexdigest()


def _run(n_shards, n_workers, tmp_path=None, name="trace.jsonl", **kw):
    tracer = None
    if tmp_path is not None:
        tracer = Tracer.to_jsonl(tmp_path / name, channels=CHANNELS)
    plan = ShardPlan(n_shards=n_shards, n_workers=n_workers)
    config = kw.pop("config", CampaignConfig()).with_(shards=plan)
    result = scaled_phase1(
        scale=700, n_proteins=6, seed=42, config=config, tracer=tracer, **kw
    ).run()
    if tracer is not None:
        tracer.close()
    return result, tracer


def _fingerprint(result) -> dict:
    """Everything observable about a merged result, hashed or verbatim."""
    m = result.metrics()
    return {
        "completion_time": result.completion_time,
        "disclosed": result.server.stats.disclosed,
        "effective": result.server.stats.effective,
        "n_hosts": result.n_hosts,
        "registry": _registry_digest(result),
        "metrics": {f: getattr(m, f) for f in vars(m)},
        "fault_report": result.fault_report().as_dict(),
        "batch_completion": result.batch_completion_s.tolist(),
    }


class TestShardPlanValue:
    def test_validates_counts(self):
        with pytest.raises(ValueError):
            ShardPlan(n_shards=0)
        with pytest.raises(ValueError):
            ShardPlan(n_shards=2, n_workers=0)

    def test_frozen(self):
        plan = ShardPlan(n_shards=2, n_workers=2)
        with pytest.raises(AttributeError):
            plan.n_shards = 4


class TestPlanShards:
    @pytest.fixture(scope="class")
    def sim(self):
        return scaled_phase1(scale=700, n_proteins=6, seed=42)

    def test_covers_campaign_disjointly(self, sim):
        for k in (1, 2, 3):
            specs = plan_shards(sim, k)
            assert len(specs) == k
            assert specs[0].batch_lo == 0
            assert specs[-1].batch_hi == len(sim.library)
            for a, b in zip(specs, specs[1:]):
                assert a.batch_hi == b.batch_lo

    def test_workunit_ids_partition_the_campaign(self, sim):
        specs = plan_shards(sim, 3)
        assert specs[0].wu_id_base == 0
        for a, b in zip(specs, specs[1:]):
            assert b.wu_id_base == a.wu_id_base + a.n_workunits
        total = specs[-1].wu_id_base + specs[-1].n_workunits
        assert total == sim.plan.total_workunits()

    def test_host_id_blocks_disjoint(self, sim):
        specs = plan_shards(sim, 3)
        assert [s.host_id_base for s in specs] == [
            0, HOST_ID_STRIDE, 2 * HOST_ID_STRIDE
        ]

    def test_too_many_shards_rejected(self, sim):
        with pytest.raises(ValueError):
            plan_shards(sim, len(sim.library) + 1)


class TestGoldenPin:
    """K=1 — and no plan — must stay bit-identical to the pre-PR output."""

    @pytest.mark.parametrize("plan", [None, ShardPlan(n_shards=1)])
    def test_monolithic_golden(self, tmp_path, plan):
        tracer = Tracer.to_jsonl(tmp_path / "t.jsonl", channels=CHANNELS)
        config = CampaignConfig(shards=plan)
        result = scaled_phase1(
            scale=700, n_proteins=6, seed=42, config=config, tracer=tracer
        ).run()
        tracer.close()
        assert result.completion_time == GOLDEN["completion_time"]
        assert result.server.stats.disclosed == GOLDEN["disclosed"]
        assert result.server.stats.effective == GOLDEN["effective"]
        assert result.n_hosts == GOLDEN["n_hosts"]
        assert tracer.n_events == GOLDEN["n_events"]
        assert _registry_digest(result) == GOLDEN["registry_digest"]
        assert _trace_digest(tmp_path / "t.jsonl") == GOLDEN["trace_digest"]


class TestMergeDeterminism:
    @pytest.mark.parametrize("n_shards", [2, 4])
    def test_pool_identical_to_in_process(self, tmp_path, n_shards):
        seq, _ = _run(n_shards, 1, tmp_path, "seq.jsonl")
        pool, _ = _run(n_shards, 2, tmp_path, "pool.jsonl")
        assert _fingerprint(seq) == _fingerprint(pool)
        assert _trace_digest(tmp_path / "seq.jsonl") == _trace_digest(
            tmp_path / "pool.jsonl"
        )

    def test_run_twice_identical(self):
        a, _ = _run(3, 1)
        b, _ = _run(3, 1)
        assert _fingerprint(a) == _fingerprint(b)

    def test_shard_walls_reported(self):
        result, _ = _run(2, 1)
        assert result.shard_walls is not None
        assert len(result.shard_walls) == 2
        assert all(w > 0 for w in result.shard_walls)
        mono = scaled_phase1(scale=700, n_proteins=6, seed=42).run()
        assert mono.shard_walls is None


class TestMergedArtifacts:
    @pytest.fixture(scope="class")
    def sharded(self, tmp_path_factory):
        d = tmp_path_factory.mktemp("sharded")
        result, tracer = _run(2, 2, d)
        return result, tracer, d / "trace.jsonl"

    def test_trace_time_ordered(self, sharded):
        _, _, path = sharded
        last = float("-inf")
        for e in iter_trace(path):
            if e.t_sim is not None:
                assert e.t_sim >= last
                last = e.t_sim

    def test_no_shard_files_left_behind(self, sharded):
        _, _, path = sharded
        leftovers = [
            f for f in os.listdir(path.parent) if f.startswith("shard-")
        ]
        assert leftovers == []

    def test_tracer_counts_cover_merged_file(self, sharded):
        _, tracer, path = sharded
        n_lines = sum(1 for _ in open(path))
        assert tracer.n_events == n_lines
        assert sum(tracer.counts.values()) == n_lines

    def test_span_reconstruction_zero_orphans(self, sharded):
        from repro.obs.spans import reconstruct_file

        _, _, path = sharded
        campaign = reconstruct_file(path)
        assert campaign.orphans == 0
        assert len(campaign.trees) > 0

    def test_daily_series_sum_to_totals(self, sharded):
        result, _, _ = sharded
        tel = result.telemetry
        assert tel.daily_results.sum() == result.server.stats.disclosed
        assert tel.daily_cpu_s.sum() == pytest.approx(
            result.server.stats.consumed_cpu_s
        )

    def test_export_round_trips(self, sharded, tmp_path):
        result, _, _ = sharded
        paths = result.export(tmp_path / "campaign")
        assert paths and all(p.exists() for p in paths)


class TestFaultMerge:
    def test_fault_budget_recombines(self):
        config = CampaignConfig(
            faults=FaultPlan.from_spec("corrupt=0.1,loss=0.05")
        )
        seq, _ = _run(2, 1, config=config)
        pool, _ = _run(2, 2, config=config)
        assert seq.fault_report().as_dict() == pool.fault_report().as_dict()
        # injected faults must actually register in the merged budget
        assert any(
            v for k, v in seq.fault_report().as_dict().items()
            if isinstance(v, (int, float)) and v
        )


class TestIncompatibleRiders:
    """Fail-fast errors must name the unsupported artifact and point the
    user back at the monolithic path (drop ``--shards`` / ``n_shards=1``)."""

    def test_health_monitor_rejected(self):
        config = CampaignConfig(shards=ShardPlan(n_shards=2))
        sim = scaled_phase1(
            scale=700, n_proteins=6, seed=42, config=config, health=True
        )
        with pytest.raises(
            ValueError,
            match=r"health monitor .*cannot be recombined.*n_shards=1",
        ):
            sim.run()

    def test_profiler_rejected(self):
        from repro.obs import Profiler

        config = CampaignConfig(shards=ShardPlan(n_shards=2))
        sim = scaled_phase1(
            scale=700, n_proteins=6, seed=42, config=config,
            profiler=Profiler(),
        )
        with pytest.raises(
            ValueError,
            match=r"profiler .*across[\s\S]*shard processes.*n_shards=1",
        ):
            sim.run()

    def test_ring_sink_rejected(self):
        from repro.obs import RingSink

        tracer = Tracer(sink=RingSink(capacity=1000), channels=CHANNELS)
        config = CampaignConfig(shards=ShardPlan(n_shards=2))
        sim = scaled_phase1(
            scale=700, n_proteins=6, seed=42, config=config, tracer=tracer
        )
        with pytest.raises(
            ValueError,
            match=r"ring trace .*JSONL path[\s\S]*n_shards=1",
        ):
            sim.run()


class TestServerIdBase:
    def test_offset_ids_accepted_and_checked(self):
        from repro.boinc.server import GridServer
        from repro.core.workunit import WorkUnit
        from repro.grid.des import Simulator

        wus = [
            (WorkUnit(wu_id=100 + i, receptor=0, ligand=i,
                      isep_start=1, nsep=4, cost_reference_s=10.0), 0)
            for i in range(3)
        ]
        server = GridServer(Simulator(), wus, id_base=100)
        assert server.n_workunits == 3
        with pytest.raises(ValueError):
            GridServer(Simulator(), wus)
