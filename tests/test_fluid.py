"""Tests for repro.fluid: the full-scale analytic campaign model."""

from __future__ import annotations

import numpy as np
import pytest

from repro import constants as C
from repro.core.campaign import CampaignPlan
from repro.core.packaging import PackagingPolicy, WorkUnitPlan
from repro.fluid import FluidCampaign


@pytest.fixture(scope="module")
def fluid(phase1_library, phase1_cost_model):
    campaign = CampaignPlan(phase1_library, phase1_cost_model)
    plan = WorkUnitPlan(phase1_cost_model, PackagingPolicy(target_hours=3.65))
    return FluidCampaign(campaign, plan.duration_stats()["mean"])


@pytest.fixture(scope="module")
def result(fluid):
    return fluid.run()


class TestPhase1Reproduction:
    """The paper's full-scale anchors."""

    def test_completion_in_26_weeks(self, result):
        assert result.completion_week == pytest.approx(26.0, abs=2.0)

    def test_whole_period_vftp(self, result):
        assert result.metrics().vftp == pytest.approx(
            C.HCMD_VFTP_WHOLE_PERIOD, rel=0.06
        )

    def test_full_power_vftp(self, result):
        m = result.metrics(first_week=13)
        assert m.vftp == pytest.approx(C.HCMD_VFTP_FULL_POWER, rel=0.06)

    def test_total_consumed_cpu(self, result):
        assert result.consumed_cpu_s.sum() == pytest.approx(
            C.TOTAL_WCG_CPU_S, rel=0.04
        )

    def test_overall_redundancy(self, result):
        assert result.overall_redundancy == pytest.approx(
            C.REDUNDANCY_FACTOR, abs=0.06
        )

    def test_useful_fraction(self, result):
        assert result.useful_fraction == pytest.approx(
            C.USEFUL_RESULT_FRACTION, abs=0.04
        )

    def test_result_counts(self, result):
        assert result.results_useful.sum() == pytest.approx(
            C.RESULTS_EFFECTIVE, rel=0.04
        )
        assert result.results_disclosed.sum() == pytest.approx(
            C.RESULTS_DISCLOSED, rel=0.04
        )

    def test_dedicated_equivalents(self, result):
        assert result.metrics().dedicated_equivalent == pytest.approx(
            C.DEDICATED_EQUIV_WHOLE_PERIOD, rel=0.06
        )
        assert result.metrics(first_week=13).dedicated_equivalent == pytest.approx(
            C.DEDICATED_EQUIV_FULL_POWER, rel=0.10
        )

    def test_mean_device_time(self, fluid):
        assert fluid.mean_device_seconds_per_result == pytest.approx(
            C.WCG_RESULT_MEAN_S, rel=0.03
        )

    def test_figure7_anchor(self, fluid, result):
        # Week ~19.4 is 2007-05-02: 85% proteins docked, 47% of the work.
        snap = fluid.snapshot_at_week(result, 19.4)
        assert snap.protein_fraction_complete == pytest.approx(0.85, abs=0.06)
        assert snap.work_fraction == pytest.approx(0.47, abs=0.06)


class TestMechanics:
    def test_work_conservation(self, result):
        assert result.useful_reference_s.sum() == pytest.approx(
            result.total_work, rel=1e-9
        )

    def test_cumulative_fraction_monotone(self, result):
        cum = result.cumulative_work_fraction
        assert (np.diff(cum) >= -1e-12).all()
        assert cum[-1] == pytest.approx(1.0)

    def test_vftp_follows_three_phases(self, result):
        control = result.vftp[:8].mean()
        full = result.vftp[14:20].mean()
        assert full > 4 * control

    def test_no_consumption_after_completion(self, fluid):
        res = fluid.run(max_weeks=50)
        assert len(res.weeks) == int(np.ceil(res.completion_week))

    def test_redundancy_regimes(self, fluid):
        assert fluid.redundancy(0.0) > fluid.redundancy(25.0)

    def test_calibrate_switch_week(self, phase1_library, phase1_cost_model):
        campaign = CampaignPlan(phase1_library, phase1_cost_model)
        plan = WorkUnitPlan(phase1_cost_model, PackagingPolicy(3.65))
        fc = FluidCampaign(campaign, plan.duration_stats()["mean"])
        week = fc.calibrate_switch_week(target_redundancy=1.37)
        assert 5.0 < week < 26.0
        assert fc.run().overall_redundancy == pytest.approx(1.37, abs=0.01)

    def test_metrics_rejects_empty_range(self, result):
        with pytest.raises(ValueError):
            result.metrics(first_week=100, last_week=100)

    def test_snapshot_rejects_negative_week(self, fluid, result):
        with pytest.raises(ValueError):
            fluid.snapshot_at_week(result, -1.0)

    def test_rejects_nonpositive_mean_wu(self, phase1_library, phase1_cost_model):
        campaign = CampaignPlan(phase1_library, phase1_cost_model)
        with pytest.raises(ValueError):
            FluidCampaign(campaign, 0.0)
