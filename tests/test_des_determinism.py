"""Campaign-level determinism: fast DES kernel vs the frozen reference.

The ISSUE acceptance criterion for the fast path: a seeded scaled
campaign must produce a bit-identical ``CampaignResult`` and an
identical event-trace sequence whether it runs on the new kernel
(``repro.grid.des``) or the original one (``repro.grid._reference_des``).
These tests monkeypatch the kernel class used by the campaign simulator
and compare full trajectories.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.boinc.simulator as simulator_mod
from repro.grid import _reference_des
from repro.grid.des import Simulator as FastSimulator
from repro.obs import Tracer


def _run_campaign(monkeypatch, sim_cls, scale=200, n_proteins=12):
    """One traced seeded campaign on the given kernel class."""
    monkeypatch.setattr(simulator_mod, "Simulator", sim_cls)
    tracer = Tracer()
    result = simulator_mod.scaled_phase1(
        scale=scale, n_proteins=n_proteins, tracer=tracer
    ).run()
    return tracer, result


def _trace_tuples(tracer):
    return [
        (e.etype, e.t_sim, tuple(sorted(e.fields.items())))
        for e in tracer.sink.events
    ]


def _assert_results_bit_identical(a, b):
    assert a.completion_time == b.completion_time
    assert a.server.sim.events_processed == b.server.sim.events_processed
    np.testing.assert_array_equal(a.batch_completion_s, b.batch_completion_s)
    sa, sb = a.server.stats, b.server.stats
    for field in (
        "disclosed", "effective", "invalid", "late", "quorum_extra",
        "consumed_cpu_s", "useful_reference_s",
    ):
        assert getattr(sa, field) == getattr(sb, field), field
    for series in ("daily_cpu_s", "daily_results", "daily_useful",
                   "run_active_s"):
        np.testing.assert_array_equal(
            np.asarray(getattr(a.telemetry, series)),
            np.asarray(getattr(b.telemetry, series)),
        )
    assert a.telemetry.total_claimed_credit == b.telemetry.total_claimed_credit


class TestKernelEquivalenceAtCampaignScale:
    @pytest.fixture(scope="class")
    def runs(self):
        # class-scoped monkeypatching: undo immediately, keep the results
        mp = pytest.MonkeyPatch()
        try:
            fast = _run_campaign(mp, FastSimulator)
            mp.undo()
            ref = _run_campaign(mp, _reference_des.Simulator)
        finally:
            mp.undo()
        return fast, ref

    def test_campaign_result_bit_identical(self, runs):
        (_, fast), (_, ref) = runs
        _assert_results_bit_identical(fast, ref)

    def test_event_trace_sequence_identical(self, runs):
        """Every trace event — including des.schedule / des.fire /
        des.cancel with their times and callback names — matches the
        reference kernel's sequence exactly."""
        (fast_tr, _), (ref_tr, _) = runs
        assert fast_tr.counts == ref_tr.counts
        assert _trace_tuples(fast_tr) == _trace_tuples(ref_tr)

    def test_reference_kernel_really_differs(self):
        # Guard against the oracle silently becoming the fast kernel.
        assert _reference_des.Simulator is not FastSimulator
        assert hasattr(_reference_des.Event, "__dataclass_fields__")


class TestRunTwiceDeterminism:
    def test_same_seed_same_trajectory(self, monkeypatch):
        tr_a, res_a = _run_campaign(monkeypatch, FastSimulator, scale=700,
                                    n_proteins=6)
        tr_b, res_b = _run_campaign(monkeypatch, FastSimulator, scale=700,
                                    n_proteins=6)
        _assert_results_bit_identical(res_a, res_b)
        assert _trace_tuples(tr_a) == _trace_tuples(tr_b)
