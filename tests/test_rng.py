"""Tests for repro.rng: named deterministic stream derivation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import rng


class TestStableHash:
    def test_deterministic(self):
        assert rng.stable_hash64("proteins") == rng.stable_hash64("proteins")

    def test_distinct_names(self):
        names = ["a", "b", "proteins", "hosts", "cost-matrix", ""]
        hashes = {rng.stable_hash64(n) for n in names}
        assert len(hashes) == len(names)

    def test_fits_64_bits(self):
        assert 0 <= rng.stable_hash64("x") < 2**64

    @given(st.text(max_size=50))
    def test_stable_for_any_text(self, name):
        assert rng.stable_hash64(name) == rng.stable_hash64(name)


class TestStream:
    def test_same_name_same_sequence(self):
        a = rng.stream(7, "x").random(5)
        b = rng.stream(7, "x").random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_names_differ(self):
        a = rng.stream(7, "x").random(5)
        b = rng.stream(7, "y").random(5)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = rng.stream(7, "x").random(5)
        b = rng.stream(8, "x").random(5)
        assert not np.array_equal(a, b)

    def test_order_independence(self):
        # Creating other streams in between must not perturb a stream.
        a = rng.stream(7, "x").random(3)
        rng.stream(7, "noise").random(100)
        b = rng.stream(7, "x").random(3)
        np.testing.assert_array_equal(a, b)


class TestSubstream:
    def test_indexed_streams_independent(self):
        a0 = rng.substream(7, "host", 0).random(3)
        a1 = rng.substream(7, "host", 1).random(3)
        assert not np.array_equal(a0, a1)

    def test_reproducible(self):
        a = rng.substream(7, "host", 42).random(3)
        b = rng.substream(7, "host", 42).random(3)
        np.testing.assert_array_equal(a, b)

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            rng.substream(7, "host", -1)

    def test_substream_differs_from_stream(self):
        a = rng.stream(7, "host").random(3)
        b = rng.substream(7, "host", 0).random(3)
        assert not np.array_equal(a, b)
