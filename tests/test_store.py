"""Tests for repro.store: the packed columnar result store.

Covers the format layer (pack/unpack exactness, sentinels, the on-disk
segment framing, rollback), the lossless text converters (the pinned
byte-identity contract), the vectorized check -> merge -> matrix pipeline
(verdict and bit parity with the text path on golden fixtures), the
science-layer extraction constructors, and the MaxDoRun columnar
producer path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.maxdo.resultfile import (
    RESULT_DTYPE,
    ResultHeader,
    read_results,
    write_results,
)
from repro.rng import stream
from repro.store import (
    PACKED_DTYPE,
    ROW_BYTES,
    STORE_MAGIC,
    ColumnarSegment,
    StoreWriter,
    check_segment,
    check_store,
    energy_matrix,
    iter_segments,
    merge_couple_store,
    merge_segments,
    pack_records,
    position_energy_maps,
    read_store,
    render_lines,
    rollback_partial_store,
    segment_from_text,
    segment_to_text,
    store_to_text,
    text_to_store,
    unpack_records,
    write_store,
)
from repro.validation.checks import check_result_file
from repro.validation.merge import merge_couple_results

pytestmark = pytest.mark.store


def synth_records(
    n_or_rng, nsep=4, n_rot=3, isep_start=1, seed=5
) -> np.ndarray:
    """Text-representable random records on a (nsep x n_rot) grid."""
    rng = n_or_rng if hasattr(n_or_rng, "normal") else stream(seed, "store-test")
    n = nsep * n_rot
    rec = np.zeros(n, dtype=RESULT_DTYPE)
    rec["isep"] = np.repeat(np.arange(isep_start, isep_start + nsep), n_rot)
    rec["irot"] = np.tile(np.arange(1, n_rot + 1), nsep)
    rec["igamma"] = rng.integers(1, 11, size=n)
    for f in ("x", "y", "z"):
        rec[f] = np.round(rng.normal(0.0, 50.0, n), 3)
    for f in ("alpha", "beta", "gamma"):
        rec[f] = np.round(rng.uniform(-3.1416, 3.1416, n), 4)
    rec["e_lj"] = np.round(rng.normal(-25.0, 10.0, n), 4)
    rec["e_elec"] = np.round(rng.normal(-6.0, 3.0, n), 4)
    rec["e_tot"] = np.round(rec["e_lj"] + rec["e_elec"], 4)
    return rec


def header_for(rec, receptor="P001", ligand="P002") -> ResultHeader:
    nsep = int(rec["isep"].max() - rec["isep"].min() + 1) if len(rec) else 0
    n_rot = int(rec["irot"].max()) if len(rec) else 0
    return ResultHeader(
        receptor=receptor, ligand=ligand,
        isep_start=int(rec["isep"].min()) if len(rec) else 1,
        nsep=nsep, n_couples=n_rot, n_gamma=10,
    )


def write_text(path, rec, **kw):
    write_results(path, header_for(rec, **kw), render_lines(rec))
    return path


class TestPacking:
    def test_roundtrip_is_bit_identical(self):
        rec = synth_records(None)
        back = unpack_records(pack_records(rec))
        for name in RESULT_DTYPE.names:
            assert np.array_equal(rec[name], back[name]), name

    def test_row_bytes(self):
        # The volume model and the 123-GB comparison hang off this.
        assert ROW_BYTES == PACKED_DTYPE.itemsize == 56

    def test_non_finite_sentinels_roundtrip(self):
        rec = synth_records(None)
        rec["e_lj"][0] = np.nan
        rec["e_elec"][1] = np.inf
        rec["e_tot"][2] = -np.inf
        back = unpack_records(pack_records(rec))
        assert np.isnan(back["e_lj"][0])
        assert back["e_elec"][1] == np.inf
        assert back["e_tot"][2] == -np.inf
        # Everything else still bit-identical.
        assert np.array_equal(rec["e_lj"][1:], back["e_lj"][1:])

    def test_out_of_range_value_rejected(self):
        rec = synth_records(None)
        rec["x"][0] = 3.0e6  # > int32 range at scale 1000
        with pytest.raises(ValueError, match="'x'"):
            pack_records(rec)

    def test_out_of_range_index_rejected(self):
        rec = synth_records(None)
        rec["irot"][0] = 40_000  # > int16
        with pytest.raises(ValueError, match="'irot'"):
            pack_records(rec)

    def test_quantizes_non_text_values_like_the_formatter(self):
        # A value that never went through text is stored at text precision,
        # with the same rounding the %-format would apply.
        rec = synth_records(None, nsep=1, n_rot=1)
        rec["x"][0] = 1.23456789
        back = unpack_records(pack_records(rec))
        assert back["x"][0] == pytest.approx(1.235, abs=5e-10)


class TestSegment:
    def test_from_records_and_column(self):
        rec = synth_records(None)
        seg = ColumnarSegment.from_records(header_for(rec), rec)
        assert len(seg) == len(rec)
        assert np.array_equal(seg.column("e_tot"), rec["e_tot"])
        assert seg.column("isep").dtype == np.int64
        assert np.array_equal(seg.table().records["x"], rec["x"])

    def test_rejects_wrong_dtype(self):
        with pytest.raises(ValueError, match="PACKED_DTYPE"):
            ColumnarSegment(
                header=header_for(np.zeros(0, RESULT_DTYPE)),
                packed=np.zeros(3, dtype=np.int64),
            )


class TestStoreFile:
    def test_write_read_roundtrip(self, tmp_path):
        rec = synth_records(None)
        segments = [
            ColumnarSegment.from_records(
                header_for(rec, ligand=f"P{k:03d}"), rec, source=f"f{k}.result"
            )
            for k in range(3)
        ]
        path = tmp_path / "s.rcs"
        assert write_store(path, segments) == 3
        store = read_store(path)
        assert len(store) == 3
        assert store.n_rows == 3 * len(rec)
        assert [s.source for s in store.segments] == [
            "f0.result", "f1.result", "f2.result"
        ]
        for orig, loaded in zip(segments, store.segments):
            assert orig.header == loaded.header
            assert np.array_equal(orig.packed, loaded.packed)

    def test_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.rcs"
        path.write_bytes(b"NOTASTORE")
        with pytest.raises(ValueError, match="not a repro result store"):
            read_store(path)

    def test_crc_corruption_detected(self, tmp_path):
        rec = synth_records(None)
        path = tmp_path / "s.rcs"
        write_store(path, [ColumnarSegment.from_records(header_for(rec), rec)])
        blob = bytearray(path.read_bytes())
        blob[-20] ^= 0xFF  # flip a payload byte
        path.write_bytes(bytes(blob))
        with pytest.raises(ValueError, match="CRC mismatch"):
            read_store(path)

    def test_truncation_detected(self, tmp_path):
        rec = synth_records(None)
        path = tmp_path / "s.rcs"
        write_store(path, [ColumnarSegment.from_records(header_for(rec), rec)])
        path.write_bytes(path.read_bytes()[:-10])
        with pytest.raises(ValueError, match="truncated"):
            read_store(path)

    def test_writer_appends_without_rewriting(self, tmp_path):
        rec = synth_records(None)
        path = tmp_path / "s.rcs"
        write_store(path, [ColumnarSegment.from_records(header_for(rec), rec)])
        before = path.read_bytes()
        with StoreWriter(path) as writer:
            writer.append(ColumnarSegment.from_records(header_for(rec), rec))
        after = path.read_bytes()
        assert after[: len(before)] == before
        assert len(read_store(path)) == 2

    def test_couple_grouping(self, tmp_path):
        rec = synth_records(None)
        path = tmp_path / "s.rcs"
        write_store(path, [
            ColumnarSegment.from_records(header_for(rec, ligand="PA"), rec),
            ColumnarSegment.from_records(header_for(rec, ligand="PB"), rec),
            ColumnarSegment.from_records(header_for(rec, ligand="PA"), rec),
        ])
        store = read_store(path)
        assert store.couples() == [("P001", "PA"), ("P001", "PB")]
        groups = store.by_couple()
        assert len(groups[("P001", "PA")]) == 2

    def test_campaign_tag_roundtrips(self, tmp_path):
        rec = synth_records(None)
        path = tmp_path / "s.rcs"
        write_store(path, [
            ColumnarSegment.from_records(
                header_for(rec, ligand="PA"), rec, campaign="hcmd"
            ),
            ColumnarSegment.from_records(header_for(rec, ligand="PB"), rec),
        ])
        store = read_store(path)
        assert [s.campaign for s in store.segments] == ["hcmd", None]
        groups = store.by_campaign()
        assert set(groups) == {"hcmd", None}
        assert len(groups["hcmd"]) == 1 and len(groups[None]) == 1

    def test_untagged_segments_keep_the_pre_tag_byte_layout(self, tmp_path):
        """The campaign key is strictly additive: segments without a tag
        encode byte-identically to stores written before it existed."""
        rec = synth_records(None)
        untagged = tmp_path / "untagged.rcs"
        write_store(untagged, [
            ColumnarSegment.from_records(header_for(rec), rec, source="a"),
        ])
        explicit_none = tmp_path / "none.rcs"
        write_store(explicit_none, [
            ColumnarSegment.from_records(
                header_for(rec), rec, source="a", campaign=None
            ),
        ])
        assert untagged.read_bytes() == explicit_none.read_bytes()
        assert b'"campaign"' not in untagged.read_bytes()
        tagged = tmp_path / "tagged.rcs"
        write_store(tagged, [
            ColumnarSegment.from_records(
                header_for(rec), rec, source="a", campaign="hcmd"
            ),
        ])
        assert b'"campaign": "hcmd"' in tagged.read_bytes()


class TestRollback:
    def _chunked_store(self, tmp_path, n_chunks=4, rows_per_chunk=6):
        path = tmp_path / "p.rcs"
        with StoreWriter(path) as writer:
            for k in range(n_chunks):
                rec = synth_records(
                    None, nsep=2, n_rot=3, isep_start=1 + 2 * k, seed=k
                )
                writer.append(
                    ColumnarSegment.from_records(header_for(rec), rec)
                )
        return path

    def test_keeps_exact_prefix(self, tmp_path):
        path = self._chunked_store(tmp_path)
        dropped = rollback_partial_store(path, rows_committed=12)
        assert dropped == 12
        store = read_store(path)
        assert store.n_rows == 12
        assert len(store) == 2

    def test_noop_when_everything_committed(self, tmp_path):
        path = self._chunked_store(tmp_path)
        size = path.stat().st_size
        assert rollback_partial_store(path, rows_committed=24) == 0
        assert path.stat().st_size == size

    def test_drops_torn_trailing_segment(self, tmp_path):
        path = self._chunked_store(tmp_path)
        with path.open("ab") as fh:
            fh.write(b"SEG1\x00\x01garbage")  # a kill mid-append
        rollback_partial_store(path, rows_committed=18)
        assert read_store(path).n_rows == 18

    def test_misaligned_boundary_rejected(self, tmp_path):
        path = self._chunked_store(tmp_path)
        with pytest.raises(ValueError, match="does not align"):
            rollback_partial_store(path, rows_committed=7)

    def test_overclaimed_checkpoint_rejected(self, tmp_path):
        path = self._chunked_store(tmp_path)
        with pytest.raises(ValueError, match="checkpoint claims"):
            rollback_partial_store(path, rows_committed=999)


class TestTextConversion:
    def test_text_to_columnar_to_text_byte_identical(self, tmp_path):
        rec = synth_records(None)
        src = write_text(tmp_path / "a.result", rec)
        seg = segment_from_text(src)
        out = tmp_path / "b.result"
        segment_to_text(seg, out)
        assert out.read_bytes() == src.read_bytes()

    def test_columnar_to_text_to_columnar_byte_identical(self, tmp_path):
        rec = synth_records(None)
        seg = ColumnarSegment.from_records(
            header_for(rec), rec, source="a.result"
        )
        mid = tmp_path / "a.result"
        segment_to_text(seg, mid)
        back = segment_from_text(mid)
        assert np.array_equal(seg.packed, back.packed)
        assert seg.header == back.header

    def test_extreme_but_representable_values(self, tmp_path):
        # The widest values the fixed formats emit without drifting.
        rec = synth_records(None, nsep=1, n_rot=4)
        rec["x"][:] = [-499.999, 499.999, 0.001, -0.001]
        rec["alpha"][:] = [-3.1416, 3.1416, 0.0001, -0.0001]
        rec["e_lj"][:] = [-99999.9999, 99999.9999, 0.0001, -0.0001]
        rec["e_elec"][:] = 0.0
        rec["e_tot"][:] = rec["e_lj"]
        src = write_text(tmp_path / "x.result", rec)
        out = tmp_path / "y.result"
        segment_to_text(segment_from_text(src), out)
        assert out.read_bytes() == src.read_bytes()

    def test_directory_roundtrip_preserves_names(self, tmp_path):
        src_dir = tmp_path / "src"
        src_dir.mkdir()
        paths = []
        for k in range(3):
            rec = synth_records(None, seed=k)
            paths.append(
                write_text(src_dir / f"c{k}.result", rec, ligand=f"L{k}")
            )
        store_path = tmp_path / "all.rcs"
        assert text_to_store(paths, store_path) == 3
        out_dir = tmp_path / "back"
        written = store_to_text(store_path, out_dir)
        assert [p.name for p in written] == ["c0.result", "c1.result", "c2.result"]
        for orig, back in zip(paths, written):
            assert back.read_bytes() == orig.read_bytes()

    def test_render_lines_matches_format_record(self):
        from repro.maxdo.resultfile import format_record

        rec = synth_records(None)
        lines = render_lines(rec)
        for row, line in zip(rec, lines):
            assert line == format_record(
                int(row["isep"]), int(row["irot"]), int(row["igamma"]),
                np.array([row["x"], row["y"], row["z"]]),
                np.array([row["alpha"], row["beta"], row["gamma"]]),
                float(row["e_lj"]), float(row["e_elec"]),
            )


class TestCheckParity:
    """check_segment must reach the verdicts check_result_file reaches."""

    def _both(self, tmp_path, rec, header=None):
        header = header or header_for(rec)
        path = tmp_path / "a.result"
        write_results(path, header, render_lines(rec))
        text_report = check_result_file(path)
        seg = ColumnarSegment.from_records(header, rec, source="a.result")
        col_report = check_segment(seg, name="a.result")
        return text_report, col_report

    def _assert_same(self, text_report, col_report):
        assert text_report.ok == col_report.ok
        assert (
            text_report.files_with_bad_line_count
            == col_report.files_with_bad_line_count
        )
        assert (
            text_report.files_with_bad_values == col_report.files_with_bad_values
        )

    def test_clean_file(self, tmp_path):
        t, c = self._both(tmp_path, synth_records(None))
        assert t.ok and c.ok
        self._assert_same(t, c)

    def test_nan_energy(self, tmp_path):
        rec = synth_records(None)
        rec["e_lj"][0] = np.nan
        rec["e_tot"][0] = np.nan
        t, c = self._both(tmp_path, rec)
        assert not c.ok
        self._assert_same(t, c)

    def test_out_of_range_energy(self, tmp_path):
        rec = synth_records(None)
        rec["e_lj"][0] = 5.0e6
        rec["e_tot"][0] = np.round(rec["e_lj"][0] + rec["e_elec"][0], 4)
        t, c = self._both(tmp_path, rec)
        assert not c.ok
        self._assert_same(t, c)

    def test_energy_sum_mismatch(self, tmp_path):
        rec = synth_records(None)
        rec["e_tot"][0] += 1.0
        t, c = self._both(tmp_path, rec)
        assert not c.ok
        assert "energy sum mismatch" in c.files_with_bad_values["a.result"]
        self._assert_same(t, c)

    def test_bad_line_count(self, tmp_path):
        rec = synth_records(None)
        header = header_for(rec)
        short = rec[:-1]
        path = tmp_path / "a.result"
        write_results(path, header, render_lines(short))
        t = check_result_file(path)
        c = check_segment(
            ColumnarSegment.from_records(header, short), name="a.result"
        )
        assert not c.ok
        self._assert_same(t, c)

    def test_check_store_counts_segments(self, tmp_path):
        rec = synth_records(None)
        path = tmp_path / "s.rcs"
        write_store(path, [
            ColumnarSegment.from_records(header_for(rec), rec)
        ])
        assert check_store(path, files_expected=1).ok
        report = check_store(path, files_expected=2)
        assert not report.ok and not report.file_count_ok


class TestMergeParity:
    def _chunks(self, n_chunks=3, nsep=4):
        return [
            synth_records(
                None, nsep=nsep, n_rot=3, isep_start=1 + k * nsep, seed=k
            )
            for k in range(n_chunks)
        ]

    def test_merged_bytes_identical_to_text_path(self, tmp_path):
        chunks = self._chunks()
        paths = [
            write_text(tmp_path / f"c{k}.result", rec)
            for k, rec in enumerate(chunks)
        ]
        text_out = tmp_path / "merged.result"
        merge_couple_results(paths, text_out)

        merged = merge_segments([segment_from_text(p) for p in paths])
        col_out = tmp_path / "merged_from_store.result"
        segment_to_text(merged, col_out)
        assert col_out.read_bytes() == text_out.read_bytes()

    def test_merged_energies_bit_identical(self, tmp_path):
        chunks = self._chunks()
        paths = [
            write_text(tmp_path / f"c{k}.result", rec)
            for k, rec in enumerate(chunks)
        ]
        text_out = tmp_path / "merged.result"
        merge_couple_results(paths, text_out)
        text_packed = pack_records(read_results(text_out).records)
        merged = merge_segments([segment_from_text(p) for p in paths])
        assert np.array_equal(merged.packed["e_tot"], text_packed["e_tot"])

    def test_gap_names_offending_segment(self):
        chunks = self._chunks()
        segs = [
            ColumnarSegment.from_records(
                header_for(rec), rec, source=f"c{k}.result"
            )
            for k, rec in enumerate(chunks)
        ]
        with pytest.raises(ValueError, match=r"gap at 9 .* in c2\.result"):
            merge_segments([segs[0], segs[2]])

    def test_duplicate_chunk_named(self):
        chunks = self._chunks()
        segs = [
            ColumnarSegment.from_records(
                header_for(rec), rec, source=f"c{k}.result"
            )
            for k, rec in enumerate(chunks)
        ]
        with pytest.raises(ValueError, match=r"overlap at 1 .* in c0\.result"):
            merge_segments([segs[0], segs[0], segs[1]])

    def test_couple_mismatch_named(self):
        a = synth_records(None)
        b = synth_records(None)
        with pytest.raises(ValueError, match="cannot merge"):
            merge_segments([
                ColumnarSegment.from_records(header_for(a, ligand="PA"), a),
                ColumnarSegment.from_records(header_for(b, ligand="PB"), b),
            ])

    def test_merge_couple_store(self, tmp_path):
        path = tmp_path / "chunks.rcs"
        segments = []
        for ligand in ("PA", "PB"):
            for k, rec in enumerate(self._chunks(n_chunks=2)):
                segments.append(
                    ColumnarSegment.from_records(
                        header_for(rec, ligand=ligand), rec
                    )
                )
        write_store(path, segments)
        out = tmp_path / "merged.rcs"
        n = merge_couple_store(path, out)
        merged = read_store(out)
        assert len(merged) == 2
        assert merged.n_rows == n == sum(len(s) for s in segments)
        for seg in merged.segments:
            assert seg.header.isep_start == 1
            assert seg.header.nsep == 8


class TestExtraction:
    def _store(self, tmp_path):
        path = tmp_path / "m.rcs"
        segments = []
        for i, (receptor, ligand) in enumerate(
            [("A", "B"), ("B", "A"), ("A", "C")]
        ):
            rec = synth_records(None, nsep=3, n_rot=2, seed=i)
            segments.append(
                ColumnarSegment.from_records(
                    header_for(rec, receptor=receptor, ligand=ligand), rec
                )
            )
        write_store(path, segments)
        return path, segments

    def test_energy_matrix_matches_bruteforce(self, tmp_path):
        path, segments = self._store(tmp_path)
        matrix, names = energy_matrix(path, names=["A", "B", "C"])
        index = {n: i for i, n in enumerate(names)}
        for seg in segments:
            i = index[seg.header.receptor]
            j = index[seg.header.ligand]
            assert matrix[i, j] == seg.records["e_tot"].min()
        assert matrix[index["C"], index["A"]] == np.inf

    def test_energy_matrix_propagates_nan(self, tmp_path):
        rec = synth_records(None, nsep=2, n_rot=2)
        rec["e_tot"][0] = np.nan
        path = tmp_path / "n.rcs"
        write_store(path, [ColumnarSegment.from_records(header_for(rec), rec)])
        matrix, _ = energy_matrix(path)
        assert np.isnan(matrix[0, 1])

    def test_position_maps_match_bruteforce(self, tmp_path):
        path, segments = self._store(tmp_path)
        maps, names = position_energy_maps(path, names=["A", "B", "C"])
        assert maps.shape == (3, 3, 3)
        index = {n: i for i, n in enumerate(names)}
        for seg in segments:
            rec = seg.records
            i = index[seg.header.receptor]
            j = index[seg.header.ligand]
            for isep in np.unique(rec["isep"]):
                expected = rec["e_tot"][rec["isep"] == isep].min()
                assert maps[i, j, int(isep) - 1] == expected

    def test_cross_docking_matrix_from_store(self, tmp_path):
        from repro.science import CrossDockingMatrix

        path, _ = self._store(tmp_path)
        matrix = CrossDockingMatrix.from_store(path)
        assert matrix.names is not None
        assert matrix.n_proteins == len(matrix.names)

    def test_sitemaps_from_store(self, tmp_path):
        from repro.science import SiteMaps

        path, _ = self._store(tmp_path)
        maps = SiteMaps.from_store(path)
        assert maps.planted_sites is None
        assert maps.directions is None
        # Consensus analysis still works with an explicit site size.
        assert len(maps.predicted_site(0, n_site=2)) == 2
        with pytest.raises(ValueError, match="n_site"):
            maps.predicted_site(0)
        with pytest.raises(ValueError, match="ground truth"):
            maps.site_recovery()


class TestMaxDoRunColumnar:
    """The producer path: one appended segment per committed position."""

    KW = dict(
        isep_start=1, nsep=3, total_nsep=4, n_couples=3, n_gamma=2,
        minimize=False,
    )

    def _run(self, receptor, ligand, workdir, fmt, **kw):
        from repro.maxdo.docking import MaxDoRun

        params = {**self.KW, **kw}
        return MaxDoRun(
            receptor, ligand, workdir=workdir, result_format=fmt, **params
        )

    def test_rejects_unknown_format(self, tiny_receptor, tiny_ligand, tmp_path):
        with pytest.raises(ValueError, match="result_format"):
            self._run(tiny_receptor, tiny_ligand, tmp_path, "parquet")

    def test_columnar_result_is_text_twin(
        self, tiny_receptor, tiny_ligand, tmp_path
    ):
        text_run = self._run(tiny_receptor, tiny_ligand, tmp_path / "t", "text")
        text_run.run()
        text_final = text_run.finalize()

        col_run = self._run(tiny_receptor, tiny_ligand, tmp_path / "c", "columnar")
        col_run.run()
        col_final = col_run.finalize()
        assert col_final.suffix == ".rcs"

        store = read_store(col_final)
        assert len(store) == 1  # finalize compacts the position chunks
        out = tmp_path / "twin.result"
        segment_to_text(store.segments[0], out)
        assert out.read_bytes() == text_final.read_bytes()

    def test_interrupt_resume_and_rollback(
        self, tiny_receptor, tiny_ligand, tmp_path
    ):
        run = self._run(tiny_receptor, tiny_ligand, tmp_path, "columnar")
        ckpt = run.run(max_positions=1)
        assert ckpt.positions_done == 1
        assert len(run.result_table()) == self.KW["n_couples"]
        # Simulate a kill mid-append: torn trailing bytes on the partial.
        with run.partial_path.open("ab") as fh:
            fh.write(b"SEG1torn")
        resumed = self._run(tiny_receptor, tiny_ligand, tmp_path, "columnar")
        ckpt = resumed.run()
        assert ckpt.complete
        final = resumed.finalize()
        assert not resumed.partial_path.exists()
        assert not resumed.checkpoint_path.exists()
        table = read_store(final).segments[0].table()
        assert len(table) == self.KW["nsep"] * self.KW["n_couples"]
        # Resumption is seamless: identical to an uninterrupted run.
        clean = self._run(tiny_receptor, tiny_ligand, tmp_path / "u", "columnar")
        clean.run()
        clean_final = clean.finalize()
        assert (
            read_store(final).segments[0].packed.tobytes()
            == read_store(clean_final).segments[0].packed.tobytes()
        )

    def test_store_file_magic(self, tiny_receptor, tiny_ligand, tmp_path):
        run = self._run(tiny_receptor, tiny_ligand, tmp_path, "columnar")
        run.run(max_positions=1)
        assert run.partial_path.read_bytes()[: len(STORE_MAGIC)] == STORE_MAGIC
