"""Tests for repro.boinc.agent: the volunteer agent state machine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.boinc.agent import VolunteerAgent
from repro.boinc.server import GridServer, ServerConfig
from repro.boinc.simulator import Telemetry
from repro.boinc.validator import ValidationPolicy
from repro.core.workunit import WorkUnit
from repro.grid.availability import AvailabilityTrace
from repro.grid.des import Simulator
from repro.grid.host import HostSpec

HORIZON = 200 * 86400.0


def _always_on():
    return AvailabilityTrace(np.array([0.0]), np.array([HORIZON]), HORIZON)


def _spec(trace=None, **kw):
    defaults = dict(
        host_id=0, speed=1.0, duty_cycle=1.0, reliability=1.0,
        abandon_prob=0.0, report_delay_mean_s=1.0,
        trace=trace if trace is not None else _always_on(),
    )
    defaults.update(kw)
    return HostSpec(**defaults)


def _setup(n_wu=2, nsep=4, cost=1000.0, spec=None, switch_time=0.0, deadline=1e7):
    sim = Simulator()
    telemetry = Telemetry(HORIZON)
    wus = [
        (
            WorkUnit(wu_id=k, receptor=0, ligand=0, isep_start=1 + k * nsep,
                     nsep=nsep, cost_reference_s=cost),
            0,
        )
        for k in range(n_wu)
    ]
    server = GridServer(
        sim, wus,
        config=ServerConfig(
            deadline_s=deadline, validation=ValidationPolicy(switch_time=switch_time)
        ),
        on_workunit_valid=lambda wu, t: telemetry.record_validation(t),
    )
    agent = VolunteerAgent(
        sim, server, spec if spec is not None else _spec(), telemetry,
        rng=np.random.default_rng(0),
    )
    return sim, server, agent, telemetry


class TestHappyPath:
    def test_completes_all_work(self):
        sim, server, agent, _ = _setup(n_wu=3)
        sim.schedule_at(0.0, agent.start)
        sim.run(until=HORIZON)
        assert server.completion_time is not None
        assert server.stats.effective == 3
        assert agent.results_returned == 3

    def test_active_time_matches_progress_rate(self):
        spec = _spec(speed=0.5, duty_cycle=0.5)
        sim, server, agent, telemetry = _setup(n_wu=1, cost=1000.0, spec=spec)
        sim.schedule_at(0.0, agent.start)
        sim.run(until=HORIZON)
        # rate = 0.25 -> 4000 s active wall for 1000 s reference.
        assert telemetry.run_active_s[0] == pytest.approx(4000.0)

    def test_accounted_cpu_is_active_wall(self):
        spec = _spec(speed=0.5, duty_cycle=0.5)
        sim, server, agent, _ = _setup(n_wu=1, cost=1000.0, spec=spec)
        sim.schedule_at(0.0, agent.start)
        sim.run(until=HORIZON)
        # The UD accounting bias: consumed 4x the reference cost.
        assert server.stats.consumed_cpu_s == pytest.approx(4000.0)
        assert server.stats.useful_reference_s == pytest.approx(1000.0)


class TestInterruption:
    def test_interrupted_host_still_finishes(self):
        # 1h on / 1h off alternation.
        n = 100
        starts = np.arange(n) * 7200.0
        ends = starts + 3600.0
        trace = AvailabilityTrace(starts, ends, HORIZON)
        sim, server, agent, telemetry = _setup(
            n_wu=1, cost=10_000.0, spec=_spec(trace=trace)
        )
        sim.schedule_at(0.0, agent.start)
        sim.run(until=HORIZON)
        assert server.stats.effective == 1
        # Kills cost extra active time: at least the reference amount spent.
        assert telemetry.run_active_s[0] >= 10_000.0

    def test_checkpoint_losses_bounded_by_chunks(self):
        starts = np.arange(200) * 7200.0
        ends = starts + 3600.0
        trace = AvailabilityTrace(starts, ends, HORIZON)
        sim, server, agent, telemetry = _setup(
            n_wu=1, cost=20_000.0, nsep=10, spec=_spec(trace=trace)
        )
        sim.schedule_at(0.0, agent.start)
        sim.run(until=HORIZON)
        active = telemetry.run_active_s[0]
        # Lost work <= (#interruptions) x chunk; with ~6 interruptions and
        # 2000 s chunks, the overhead stays well under 2x.
        assert 20_000.0 <= active < 40_000.0

    def test_never_available_host_does_nothing(self):
        trace = AvailabilityTrace(np.empty(0), np.empty(0), HORIZON)
        sim, server, agent, _ = _setup(n_wu=1, spec=_spec(trace=trace))
        sim.schedule_at(0.0, agent.start)
        sim.run(until=HORIZON)
        assert server.stats.disclosed == 0


class TestProgressResidualClamp:
    def test_done_overshooting_cost_does_not_crash(self):
        # Float accumulation across many interrupts can leave _done a few
        # ulp past _cost; the residual compute time must clamp to zero
        # instead of asking the kernel for a negative delay.
        import math

        sim, server, agent, _ = _setup(n_wu=1, cost=1000.0)
        instance = server.request_work(0)
        agent.instance = instance
        agent._cost = instance.wu.cost_reference_s
        agent._chunk = agent._cost / instance.wu.nsep
        agent._done = math.nextafter(agent._cost, math.inf)
        agent._active_s = agent._done / agent.spec.progress_rate
        agent._compute_step()  # pre-fix: ValueError from sim.schedule(-eps)
        sim.run(until=HORIZON)
        assert agent.results_returned == 1
        assert server.stats.effective == 1


class TestUnreliability:
    def test_invalid_results_reissued_until_valid(self):
        sim, server, agent, _ = _setup(n_wu=1, spec=_spec(reliability=0.5))
        sim.schedule_at(0.0, agent.start)
        sim.run(until=HORIZON)
        assert server.stats.effective == 1
        assert server.stats.disclosed >= 1
        assert server.stats.invalid == server.stats.disclosed - 1

    def test_abandoning_host_lets_deadline_recover(self):
        # abandon_prob=1: the host never computes; the deadline reclaims
        # copies, but with a single always-abandoning host the work never
        # completes — the stats must show zero results, not a hang.
        sim, server, agent, _ = _setup(
            n_wu=1, deadline=86400.0, spec=_spec(abandon_prob=1.0)
        )
        sim.schedule_at(0.0, agent.start)
        sim.run(until=30 * 86400.0)
        assert server.stats.disclosed == 0
        assert server.completion_time is None

    def test_two_hosts_one_flaky(self):
        sim = Simulator()
        telemetry = Telemetry(HORIZON)
        wus = [(WorkUnit(wu_id=0, receptor=0, ligand=0, isep_start=1, nsep=4,
                         cost_reference_s=1000.0), 0)]
        server = GridServer(
            sim, wus,
            config=ServerConfig(deadline_s=86400.0,
                                validation=ValidationPolicy(switch_time=0.0)),
        )
        flaky = VolunteerAgent(sim, server, _spec(host_id=1, abandon_prob=1.0),
                               telemetry, np.random.default_rng(1))
        solid = VolunteerAgent(sim, server, _spec(host_id=2), telemetry,
                               np.random.default_rng(2))
        sim.schedule_at(0.0, flaky.start)
        sim.schedule_at(1.0, solid.start)
        sim.run(until=HORIZON)
        assert server.stats.effective == 1
